//! Recursive-descent parser for the Java-like surface syntax.

use super::ast::*;
use super::lexer::{Spanned, Token};
use crate::instr::CmpOp;
use std::fmt;

/// A parse failure with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// 1-based line (0 when at end of input).
    pub line: u32,
    /// 1-based column (0 when at end of input).
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a token stream into an AST.
pub fn parse(tokens: Vec<Spanned>) -> Result<AstProgram, ParseError> {
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self
            .tokens
            .get(self.pos)
            .map(|s| (s.line, s.col))
            .unwrap_or((0, 0));
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    fn bump(&mut self) -> Result<Token, ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .map(|s| s.token.clone())
            .ok_or_else(|| self.error("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(found) if found == t => {
                self.pos += 1;
                Ok(())
            }
            Some(found) => Err(self.error(format!("expected {t:?}, found {found:?}"))),
            None => Err(self.error(format!("expected {t:?}, found end of input"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {kw:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump()? {
            Token::Ident(s) => Ok(s),
            other => {
                self.pos -= 1;
                Err(self.error(format!("expected identifier, found {other:?}")))
            }
        }
    }

    // ---- declarations ----------------------------------------------------

    fn program(&mut self) -> Result<AstProgram, ParseError> {
        let mut classes = Vec::new();
        while self.peek().is_some() {
            classes.push(self.class_decl()?);
        }
        Ok(AstProgram { classes })
    }

    fn class_decl(&mut self) -> Result<ClassDecl, ParseError> {
        let kind = if self.eat_keyword("abstract") {
            self.expect_keyword("class")?;
            AstTypeKind::AbstractClass
        } else if self.eat_keyword("class") {
            AstTypeKind::Class
        } else if self.eat_keyword("interface") {
            AstTypeKind::Interface
        } else {
            return Err(self.error("expected `class`, `abstract class`, or `interface`"));
        };
        let name = self.ident()?;
        let mut extends = None;
        let mut implements = Vec::new();
        if self.eat_keyword("extends") {
            if kind == AstTypeKind::Interface {
                // Interfaces may extend several interfaces.
                implements.push(self.ident()?);
                while matches!(self.peek(), Some(Token::Comma)) {
                    self.bump()?;
                    implements.push(self.ident()?);
                }
            } else {
                extends = Some(self.ident()?);
            }
        }
        if self.eat_keyword("implements") {
            implements.push(self.ident()?);
            while matches!(self.peek(), Some(Token::Comma)) {
                self.bump()?;
                implements.push(self.ident()?);
            }
        }
        self.expect(&Token::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !matches!(self.peek(), Some(Token::RBrace)) {
            let is_static = self.eat_keyword("static");
            if self.eat_keyword("var") {
                let fname = self.ident()?;
                self.expect(&Token::Colon)?;
                let ty = self.type_annotation()?;
                self.expect(&Token::Semi)?;
                fields.push(FieldDecl {
                    name: fname,
                    ty,
                    is_static,
                });
            } else {
                let is_abstract = self.eat_keyword("abstract");
                self.expect_keyword("method")?;
                methods.push(self.method_decl(is_static, is_abstract, kind)?);
            }
        }
        self.expect(&Token::RBrace)?;
        Ok(ClassDecl {
            name,
            kind,
            extends,
            implements,
            fields,
            methods,
        })
    }

    fn method_decl(
        &mut self,
        is_static: bool,
        is_abstract: bool,
        owner_kind: AstTypeKind,
    ) -> Result<MethodDecl, ParseError> {
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Some(Token::RParen)) {
            loop {
                let pname = self.ident()?;
                self.expect(&Token::Colon)?;
                let ty = self.type_annotation()?;
                params.push((pname, ty));
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.bump()?;
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        let ret = if matches!(self.peek(), Some(Token::Colon)) {
            self.bump()?;
            self.type_annotation_or_void()?
        } else {
            AstType::Void
        };
        // Interface methods without a body are implicitly abstract.
        let implicit_abstract = owner_kind == AstTypeKind::Interface
            && matches!(self.peek(), Some(Token::Semi));
        let body = if is_abstract || implicit_abstract {
            self.expect(&Token::Semi)?;
            None
        } else {
            Some(self.block()?)
        };
        Ok(MethodDecl {
            name,
            is_static,
            is_abstract: is_abstract || implicit_abstract,
            params,
            ret,
            body,
        })
    }

    fn type_annotation(&mut self) -> Result<AstType, ParseError> {
        let name = self.ident()?;
        Ok(match name.as_str() {
            "int" => AstType::Int,
            _ => AstType::Named(name),
        })
    }

    fn type_annotation_or_void(&mut self) -> Result<AstType, ParseError> {
        let name = self.ident()?;
        Ok(match name.as_str() {
            "void" => AstType::Void,
            "int" => AstType::Int,
            _ => AstType::Named(name),
        })
    }

    // ---- statements --------------------------------------------------------

    fn block(&mut self) -> Result<Vec<AstStmt>, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while !matches!(self.peek(), Some(Token::RBrace)) {
            stmts.push(self.stmt()?);
        }
        self.expect(&Token::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<AstStmt, ParseError> {
        match self.peek() {
            Some(Token::Ident(kw)) if kw == "var" => {
                self.bump()?;
                let name = self.ident()?;
                self.expect(&Token::Assign)?;
                let init = self.expr()?;
                self.expect(&Token::Semi)?;
                Ok(AstStmt::VarDecl { name, init })
            }
            Some(Token::Ident(kw)) if kw == "if" => {
                self.bump()?;
                self.expect(&Token::LParen)?;
                let cond = self.cond()?;
                self.expect(&Token::RParen)?;
                let then_body = self.block()?;
                let else_body = if self.eat_keyword("else") {
                    // `else if` chains: the else branch is the nested if.
                    if matches!(self.peek(), Some(Token::Ident(k)) if k == "if") {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(AstStmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            Some(Token::Ident(kw)) if kw == "while" => {
                self.bump()?;
                self.expect(&Token::LParen)?;
                let cond = self.cond()?;
                self.expect(&Token::RParen)?;
                let body = self.block()?;
                Ok(AstStmt::While { cond, body })
            }
            Some(Token::Ident(kw)) if kw == "return" => {
                self.bump()?;
                let value = if matches!(self.peek(), Some(Token::Semi)) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Token::Semi)?;
                Ok(AstStmt::Return(value))
            }
            Some(Token::Ident(kw)) if kw == "throw" => {
                self.bump()?;
                let e = self.expr()?;
                self.expect(&Token::Semi)?;
                Ok(AstStmt::Throw(e))
            }
            _ => {
                // Assignment, field store, or expression statement.
                let e = self.expr()?;
                if matches!(self.peek(), Some(Token::Assign)) {
                    self.bump()?;
                    let value = self.expr()?;
                    self.expect(&Token::Semi)?;
                    match e {
                        AstExpr::Var(name) => Ok(AstStmt::Assign { name, value }),
                        AstExpr::Load { recv, field } => Ok(AstStmt::FieldStore {
                            recv: *recv,
                            field,
                            value,
                        }),
                        other => Err(self.error(format!(
                            "invalid assignment target: {other:?}"
                        ))),
                    }
                } else {
                    self.expect(&Token::Semi)?;
                    Ok(AstStmt::Expr(e))
                }
            }
        }
    }

    // ---- conditions -----------------------------------------------------------

    /// `cond := and_cond ('||' and_cond)*` — `&&` binds tighter than `||`.
    fn cond(&mut self) -> Result<AstCond, ParseError> {
        let mut left = self.and_cond()?;
        while matches!(self.peek(), Some(Token::OrOr)) {
            self.bump()?;
            let right = self.and_cond()?;
            left = AstCond::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    /// `and_cond := atom_cond ('&&' atom_cond)*`
    fn and_cond(&mut self) -> Result<AstCond, ParseError> {
        let mut left = self.atom_cond()?;
        while matches!(self.peek(), Some(Token::AndAnd)) {
            self.bump()?;
            let right = self.atom_cond()?;
            left = AstCond::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn atom_cond(&mut self) -> Result<AstCond, ParseError> {
        if matches!(self.peek(), Some(Token::Bang)) {
            // `!(cond)` or `!expr`.
            self.bump()?;
            if matches!(self.peek(), Some(Token::LParen)) {
                // Try `!(cond)`: parse a full condition in parens.
                self.bump()?;
                let inner = self.cond()?;
                self.expect(&Token::RParen)?;
                return Ok(negate(inner));
            }
            let e = self.expr()?;
            return Ok(AstCond::Truthy {
                expr: e,
                negated: true,
            });
        }
        // Parenthesized sub-condition: `(a < b) && c`. A parenthesized
        // *expression* parses to a Truthy condition, which is equivalent, so
        // no backtracking is needed — but a trailing comparison after a
        // Truthy group (`(x) != 0`) re-reads the group as its expression.
        if matches!(self.peek(), Some(Token::LParen)) {
            let save = self.pos;
            self.bump()?;
            if let Ok(inner) = self.cond() {
                if matches!(self.peek(), Some(Token::RParen)) {
                    self.bump()?;
                    // `(x).f()` is an expression postfix, not a grouped
                    // condition; re-parse through the expression path.
                    if matches!(self.peek(), Some(Token::Dot)) {
                        self.pos = save;
                    } else {
                        if let AstCond::Truthy { expr, negated: false } = &inner {
                            if let Some(rest) = self.trailing_comparison(expr.clone())? {
                                return Ok(rest);
                            }
                        }
                        return Ok(inner);
                    }
                } else {
                    self.pos = save;
                }
            } else {
                self.pos = save;
            }
        }
        let lhs = self.expr()?;
        if let Some(c) = self.trailing_comparison(lhs.clone())? {
            return Ok(c);
        }
        if self.eat_keyword("instanceof") {
            let class = self.ident()?;
            return Ok(AstCond::InstanceOf {
                expr: lhs,
                class,
                negated: false,
            });
        }
        Ok(AstCond::Truthy {
            expr: lhs,
            negated: false,
        })
    }

    /// Parses `op rhs` after an already-parsed left expression, if present.
    fn trailing_comparison(&mut self, lhs: AstExpr) -> Result<Option<AstCond>, ParseError> {
        let op = match self.peek() {
            Some(Token::EqEq) => Some(CmpOp::Eq),
            Some(Token::NotEq) => Some(CmpOp::Ne),
            Some(Token::Lt) => Some(CmpOp::Lt),
            Some(Token::Le) => Some(CmpOp::Le),
            Some(Token::Gt) => Some(CmpOp::Gt),
            Some(Token::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump()?;
                let rhs = self.expr()?;
                Ok(Some(AstCond::Cmp { op, lhs, rhs }))
            }
            None => Ok(None),
        }
    }

    // ---- expressions -------------------------------------------------------------

    fn expr(&mut self) -> Result<AstExpr, ParseError> {
        let mut e = self.atom()?;
        // Postfix chains: `.field` and `.method(args)`.
        while matches!(self.peek(), Some(Token::Dot)) {
            self.bump()?;
            let name = self.ident()?;
            if matches!(self.peek(), Some(Token::LParen)) {
                self.bump()?;
                let mut args = Vec::new();
                if !matches!(self.peek(), Some(Token::RParen)) {
                    loop {
                        args.push(self.expr()?);
                        if matches!(self.peek(), Some(Token::Comma)) {
                            self.bump()?;
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Token::RParen)?;
                e = AstExpr::Call {
                    recv: Box::new(e),
                    method: name,
                    args,
                };
            } else {
                e = AstExpr::Load {
                    recv: Box::new(e),
                    field: name,
                };
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<AstExpr, ParseError> {
        match self.bump()? {
            Token::Int(n) => Ok(AstExpr::Int(n)),
            Token::Ident(name) => match name.as_str() {
                "null" => Ok(AstExpr::Null),
                "this" => Ok(AstExpr::This),
                "new" => {
                    let class = self.ident()?;
                    self.expect(&Token::LParen)?;
                    self.expect(&Token::RParen)?;
                    Ok(AstExpr::New(class))
                }
                "any" => {
                    self.expect(&Token::LParen)?;
                    self.expect(&Token::RParen)?;
                    Ok(AstExpr::Any)
                }
                "catch" => {
                    self.expect(&Token::LParen)?;
                    let class = self.ident()?;
                    self.expect(&Token::RParen)?;
                    Ok(AstExpr::Catch(class))
                }
                _ => Ok(AstExpr::Var(name)),
            },
            Token::LParen => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            other => {
                self.pos -= 1;
                Err(self.error(format!("expected expression, found {other:?}")))
            }
        }
    }
}

/// Logical negation of a parsed condition.
fn negate(c: AstCond) -> AstCond {
    match c {
        AstCond::Cmp { op, lhs, rhs } => AstCond::Cmp {
            op: op.invert(),
            lhs,
            rhs,
        },
        AstCond::InstanceOf {
            expr,
            class,
            negated,
        } => AstCond::InstanceOf {
            expr,
            class,
            negated: !negated,
        },
        AstCond::Truthy { expr, negated } => AstCond::Truthy {
            expr,
            negated: !negated,
        },
        // De Morgan.
        AstCond::And(a, b) => AstCond::Or(Box::new(negate(*a)), Box::new(negate(*b))),
        AstCond::Or(a, b) => AstCond::And(Box::new(negate(*a)), Box::new(negate(*b))),
    }
}

#[cfg(test)]
mod tests {
    use super::super::lexer::tokenize;
    use super::*;

    fn parse_src(src: &str) -> AstProgram {
        parse(tokenize(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_class_with_field_and_method() {
        let p = parse_src(
            "class A extends B implements I, J {
               var x: int;
               static var y: A;
               method m(p: int): int { return p; }
             }",
        );
        assert_eq!(p.classes.len(), 1);
        let c = &p.classes[0];
        assert_eq!(c.extends.as_deref(), Some("B"));
        assert_eq!(c.implements, vec!["I".to_string(), "J".to_string()]);
        assert_eq!(c.fields.len(), 2);
        assert!(c.fields[1].is_static);
        assert_eq!(c.methods.len(), 1);
        assert_eq!(c.methods[0].params.len(), 1);
    }

    #[test]
    fn parses_interface_with_implicitly_abstract_methods() {
        let p = parse_src("interface I { method m(): int; }");
        assert!(p.classes[0].methods[0].is_abstract);
        assert!(p.classes[0].methods[0].body.is_none());
    }

    #[test]
    fn parses_if_else_and_while() {
        let p = parse_src(
            "class A { static method m(x: int): void {
                var i = 0;
                while (i < x) { i = any(); }
                if (i == 0) { return; } else { i = 1; }
                return;
             } }",
        );
        let body = p.classes[0].methods[0].body.as_ref().unwrap();
        assert!(matches!(body[1], AstStmt::While { .. }));
        assert!(matches!(body[2], AstStmt::If { .. }));
    }

    #[test]
    fn parses_calls_loads_and_stores() {
        let p = parse_src(
            "class A { method m(o: A): void {
                var v = o.f;
                o.f = v;
                var r = o.g(1, null);
                this.h(r);
                var s = Config.get();
                return;
             } }",
        );
        let body = p.classes[0].methods[0].body.as_ref().unwrap();
        assert!(matches!(&body[0], AstStmt::VarDecl { init: AstExpr::Load { .. }, .. }));
        assert!(matches!(&body[1], AstStmt::FieldStore { .. }));
        match &body[2] {
            AstStmt::VarDecl { init: AstExpr::Call { args, .. }, .. } => assert_eq!(args.len(), 2),
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn parses_conditions() {
        let p = parse_src(
            "class A { static method m(x: int, o: A): void {
                if (x <= 3) { return; }
                if (o instanceof A) { return; }
                if (!(o instanceof A)) { return; }
                if (o.test()) { return; }
                if (!x) { return; }
                return;
             } }",
        );
        let body = p.classes[0].methods[0].body.as_ref().unwrap();
        assert!(matches!(&body[0], AstStmt::If { cond: AstCond::Cmp { op: CmpOp::Le, .. }, .. }));
        assert!(matches!(
            &body[1],
            AstStmt::If { cond: AstCond::InstanceOf { negated: false, .. }, .. }
        ));
        assert!(matches!(
            &body[2],
            AstStmt::If { cond: AstCond::InstanceOf { negated: true, .. }, .. }
        ));
        assert!(matches!(
            &body[3],
            AstStmt::If { cond: AstCond::Truthy { negated: false, .. }, .. }
        ));
        assert!(matches!(
            &body[4],
            AstStmt::If { cond: AstCond::Truthy { negated: true, .. }, .. }
        ));
    }

    #[test]
    fn parses_throw_and_catch() {
        let p = parse_src(
            "class A { static method m(): void {
                var e = catch (A);
                throw e;
             } }",
        );
        let body = p.classes[0].methods[0].body.as_ref().unwrap();
        assert!(matches!(&body[0], AstStmt::VarDecl { init: AstExpr::Catch(_), .. }));
        assert!(matches!(&body[1], AstStmt::Throw(_)));
    }

    #[test]
    fn rejects_bad_assignment_target() {
        let toks = tokenize("class A { static method m(): void { 3 = 4; } }").unwrap();
        assert!(parse(toks).is_err());
    }

    #[test]
    fn error_carries_position() {
        let toks = tokenize("class A {\n  junk\n}").unwrap();
        let err = parse(toks).unwrap_err();
        assert_eq!(err.line, 2);
    }
}
