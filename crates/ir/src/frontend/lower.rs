//! Lowering from the structured AST to SSA [`crate::Body`] values — the
//! stand-in for the paper's bytecode parsing phase.
//!
//! SSA construction uses the structured-control-flow algorithm: an
//! environment maps each local to its current SSA definition; `if`/`else`
//! branches are lowered under cloned environments and reconciled with φ
//! instructions at the merge; `while` headers pre-create φs for every local
//! assigned anywhere in the loop body.

use super::ast::*;
use crate::builder::{BodyBuilder, ProgramBuilder};
use crate::ids::{FieldId, MethodId, TypeId, VarId};
use crate::instr::{BlockEnd, CmpOp, Cond};
use crate::program::Program;
use crate::types::TypeRef;
use std::collections::{BTreeMap, HashMap};

/// A lowering failure (name resolution, structure, or typing problems the
/// parser cannot see).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LowerError {
    /// Description, including the offending names.
    pub message: String,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lowering error: {}", self.message)
    }
}

impl std::error::Error for LowerError {}

fn err<T>(message: impl Into<String>) -> Result<T, LowerError> {
    Err(LowerError {
        message: message.into(),
    })
}

/// Lowers a parsed program into a validated [`Program`].
pub fn lower(ast: &AstProgram) -> Result<Program, super::FrontendError> {
    let order = topo_order(ast).map_err(super::FrontendError::Lower)?;
    let mut pb = ProgramBuilder::new();
    let mut ctx = Ctx::default();

    // Pass 1a: declare types in topological order.
    for &ci in &order {
        let c = &ast.classes[ci];
        let id = match c.kind {
            AstTypeKind::Interface => {
                let exts = resolve_names(&ctx, &c.implements).map_err(super::FrontendError::Lower)?;
                pb.add_interface(&c.name, &exts)
            }
            AstTypeKind::Class | AstTypeKind::AbstractClass => {
                let mut cb = pb.class(&c.name);
                if let Some(sup) = &c.extends {
                    let sid = *ctx
                        .classes
                        .get(sup)
                        .ok_or_else(|| super::FrontendError::Lower(LowerError {
                            message: format!("unknown superclass {sup:?} of {:?}", c.name),
                        }))?;
                    cb = cb.extends(sid);
                }
                for i in &c.implements {
                    let iid = *ctx.classes.get(i).ok_or_else(|| {
                        super::FrontendError::Lower(LowerError {
                            message: format!("unknown interface {i:?} implemented by {:?}", c.name),
                        })
                    })?;
                    cb = cb.implements_(iid);
                }
                if c.kind == AstTypeKind::AbstractClass {
                    cb = cb.abstract_();
                }
                cb.build()
            }
        };
        ctx.classes.insert(c.name.clone(), id);
        if let Some(sup) = &c.extends {
            if let Some(&sid) = ctx.classes.get(sup) {
                ctx.supers.insert(id, sid);
            }
        }
    }

    // Pass 1b: declare fields and methods.
    for &ci in &order {
        let c = &ast.classes[ci];
        let owner = ctx.classes[&c.name];
        for f in &c.fields {
            let ty = ctx.type_ref(&f.ty).map_err(super::FrontendError::Lower)?;
            let fid = if f.is_static {
                pb.add_static_field(owner, &f.name, ty)
            } else {
                pb.add_field(owner, &f.name, ty)
            };
            ctx.fields.entry(f.name.clone()).or_default().push(fid);
            ctx.fields_by_owner.insert((owner, f.name.clone()), fid);
        }
        for m in &c.methods {
            let params: Result<Vec<TypeRef>, _> =
                m.params.iter().map(|(_, t)| ctx.type_ref(t)).collect();
            let params = params.map_err(super::FrontendError::Lower)?;
            let ret = ctx.ret_type_ref(&m.ret).map_err(super::FrontendError::Lower)?;
            let mut mb = pb.method(owner, &m.name).params(params).returns(ret);
            if m.is_static {
                mb = mb.static_();
            }
            if m.is_abstract {
                mb = mb.abstract_();
            }
            let mid = mb.build();
            ctx.methods.insert((owner, m.name.clone()), mid);
        }
    }

    // Pass 2: lower bodies.
    for &ci in &order {
        let c = &ast.classes[ci];
        let owner = ctx.classes[&c.name];
        for m in &c.methods {
            let Some(body_ast) = &m.body else { continue };
            let mid = ctx.methods[&(owner, m.name.clone())];
            let body = lower_body(&mut pb, &ctx, m, body_ast)
                .map_err(super::FrontendError::Lower)?;
            pb.set_body(mid, body);
        }
    }

    pb.finish().map_err(super::FrontendError::Validation)
}

/// Shared name-resolution context.
#[derive(Default)]
struct Ctx {
    classes: HashMap<String, TypeId>,
    /// Superclass edges, for static-member lookup along the chain.
    supers: HashMap<TypeId, TypeId>,
    /// All declared fields per (unqualified) name — instance field access is
    /// resolved by unique name because the frontend performs no type
    /// inference.
    fields: HashMap<String, Vec<FieldId>>,
    fields_by_owner: HashMap<(TypeId, String), FieldId>,
    methods: HashMap<(TypeId, String), MethodId>,
}

impl Ctx {
    fn type_ref(&self, t: &AstType) -> Result<TypeRef, LowerError> {
        match t {
            AstType::Void => err("void is only valid as a return type"),
            AstType::Int => Ok(TypeRef::Prim),
            AstType::Named(n) => {
                let id = self
                    .classes
                    .get(n)
                    .ok_or_else(|| LowerError {
                        message: format!("unknown type {n:?}"),
                    })?;
                Ok(TypeRef::Object(*id))
            }
        }
    }

    fn ret_type_ref(&self, t: &AstType) -> Result<TypeRef, LowerError> {
        match t {
            AstType::Void => Ok(TypeRef::Void),
            other => self.type_ref(other),
        }
    }

    fn class(&self, name: &str) -> Result<TypeId, LowerError> {
        self.classes.get(name).copied().ok_or_else(|| LowerError {
            message: format!("unknown class {name:?}"),
        })
    }
}

fn resolve_names(ctx: &Ctx, names: &[String]) -> Result<Vec<TypeId>, LowerError> {
    names.iter().map(|n| ctx.class(n)).collect()
}

/// Orders class declarations so that supertypes precede subtypes.
fn topo_order(ast: &AstProgram) -> Result<Vec<usize>, LowerError> {
    let index: HashMap<&str, usize> = ast
        .classes
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.as_str(), i))
        .collect();
    if index.len() != ast.classes.len() {
        return err("duplicate class name");
    }
    let mut state = vec![0u8; ast.classes.len()]; // 0 unvisited, 1 visiting, 2 done
    let mut order = Vec::with_capacity(ast.classes.len());

    fn visit(
        i: usize,
        ast: &AstProgram,
        index: &HashMap<&str, usize>,
        state: &mut [u8],
        order: &mut Vec<usize>,
    ) -> Result<(), LowerError> {
        match state[i] {
            2 => return Ok(()),
            1 => {
                return err(format!(
                    "inheritance cycle involving {:?}",
                    ast.classes[i].name
                ))
            }
            _ => {}
        }
        state[i] = 1;
        let c = &ast.classes[i];
        let mut parents: Vec<&String> = c.implements.iter().collect();
        if let Some(e) = &c.extends {
            parents.push(e);
        }
        for p in parents {
            let &pi = index.get(p.as_str()).ok_or_else(|| LowerError {
                message: format!("unknown supertype {p:?} of {:?}", c.name),
            })?;
            visit(pi, ast, index, state, order)?;
        }
        state[i] = 2;
        order.push(i);
        Ok(())
    }

    for i in 0..ast.classes.len() {
        visit(i, ast, &index, &mut state, &mut order)?;
    }
    Ok(order)
}

/// Collects the names assigned (rebound, not declared) anywhere inside a
/// statement list, recursively.
fn assigned_names(stmts: &[AstStmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            AstStmt::Assign { name, .. }
                if !out.contains(name) => {
                    out.push(name.clone());
                }
            AstStmt::If {
                then_body,
                else_body,
                ..
            } => {
                assigned_names(then_body, out);
                assigned_names(else_body, out);
            }
            AstStmt::While { body, .. } => assigned_names(body, out),
            _ => {}
        }
    }
}

/// Whether the straight-line path through these statements terminates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Flow {
    FallThrough,
    Terminated,
}

struct FnLowerer<'a, 'pb> {
    pb: &'pb mut ProgramBuilder,
    ctx: &'a Ctx,
    bb: BodyBuilder,
    /// Current SSA definition of each local in scope (BTreeMap for
    /// deterministic φ ordering).
    env: BTreeMap<String, VarId>,
    method_name: String,
    ret_void: bool,
}

fn lower_body(
    pb: &mut ProgramBuilder,
    ctx: &Ctx,
    m: &MethodDecl,
    stmts: &[AstStmt],
) -> Result<crate::body::Body, LowerError> {
    let mut names: Vec<&str> = Vec::new();
    if !m.is_static {
        names.push("this");
    }
    for (n, _) in &m.params {
        names.push(n);
    }
    let bb = BodyBuilder::new(&names);
    let mut env = BTreeMap::new();
    for (i, n) in names.iter().enumerate() {
        env.insert((*n).to_string(), bb.param(i));
    }
    let mut lw = FnLowerer {
        pb,
        ctx,
        bb,
        env,
        method_name: m.name.clone(),
        ret_void: m.ret == AstType::Void,
    };
    let flow = lw.lower_stmts(stmts)?;
    if flow == Flow::FallThrough {
        if lw.ret_void {
            lw.bb.ret(None);
        } else {
            return err(format!(
                "method {:?}: control can fall off the end of a non-void method",
                m.name
            ));
        }
    }
    Ok(lw.bb.finish())
}

impl FnLowerer<'_, '_> {
    fn lower_stmts(&mut self, stmts: &[AstStmt]) -> Result<Flow, LowerError> {
        let mut declared: Vec<String> = Vec::new();
        for (i, s) in stmts.iter().enumerate() {
            let flow = self.lower_stmt(s, &mut declared)?;
            if flow == Flow::Terminated {
                if i + 1 != stmts.len() {
                    return err(format!(
                        "method {:?}: unreachable code after return/throw",
                        self.method_name
                    ));
                }
                return Ok(Flow::Terminated);
            }
        }
        for d in declared {
            self.env.remove(&d);
        }
        Ok(Flow::FallThrough)
    }

    fn lower_stmt(&mut self, s: &AstStmt, declared: &mut Vec<String>) -> Result<Flow, LowerError> {
        match s {
            AstStmt::VarDecl { name, init } => {
                if self.env.contains_key(name) {
                    return err(format!("redeclaration of {name:?} in {:?}", self.method_name));
                }
                let v = self.lower_expr(init)?;
                self.env.insert(name.clone(), v);
                declared.push(name.clone());
                Ok(Flow::FallThrough)
            }
            AstStmt::Assign { name, value } => {
                if !self.env.contains_key(name) {
                    return err(format!(
                        "assignment to undeclared variable {name:?} in {:?}",
                        self.method_name
                    ));
                }
                let v = self.lower_expr(value)?;
                self.env.insert(name.clone(), v);
                Ok(Flow::FallThrough)
            }
            AstStmt::FieldStore { recv, field, value } => {
                match self.static_class_of(recv) {
                    Some(class) => {
                        let fid = self.static_field(class, field)?;
                        let v = self.lower_expr(value)?;
                        let obj = self.bb.null_();
                        self.bb.store(obj, fid, v);
                    }
                    None => {
                        let obj = self.lower_expr(recv)?;
                        let fid = self.unique_field(field)?;
                        let v = self.lower_expr(value)?;
                        self.bb.store(obj, fid, v);
                    }
                }
                Ok(Flow::FallThrough)
            }
            AstStmt::Expr(e) => {
                let _ = self.lower_expr(e)?;
                Ok(Flow::FallThrough)
            }
            AstStmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.lower_expr(e)?),
                    None => None,
                };
                self.bb.ret(v);
                Ok(Flow::Terminated)
            }
            AstStmt::Throw(e) => {
                let v = self.lower_expr(e)?;
                self.bb.throw(v);
                Ok(Flow::Terminated)
            }
            AstStmt::If {
                cond,
                then_body,
                else_body,
            } => self.lower_if(cond, then_body, else_body),
            AstStmt::While { cond, body } => self.lower_while(cond, body),
        }
    }

    fn lower_if(
        &mut self,
        cond: &AstCond,
        then_body: &[AstStmt],
        else_body: &[AstStmt],
    ) -> Result<Flow, LowerError> {
        // Short-circuit operators desugar to nested ifs with a duplicated
        // branch (the base language has no boolean values):
        //   if (A && B) T else E  ≡  if (A) { if (B) T else E } else E
        //   if (A || B) T else E  ≡  if (A) T else { if (B) T else E }
        match cond {
            AstCond::And(a, b) => {
                let inner = AstStmt::If {
                    cond: (**b).clone(),
                    then_body: then_body.to_vec(),
                    else_body: else_body.to_vec(),
                };
                return self.lower_if(a, &[inner], else_body);
            }
            AstCond::Or(a, b) => {
                let inner = AstStmt::If {
                    cond: (**b).clone(),
                    then_body: then_body.to_vec(),
                    else_body: else_body.to_vec(),
                };
                return self.lower_if(a, then_body, &[inner]);
            }
            _ => {}
        }
        let ir_cond = self.lower_cond(cond)?;
        let then_b = self.bb.raw_label_block();
        let else_b = self.bb.raw_label_block();
        self.bb.raw_end(BlockEnd::If {
            cond: ir_cond,
            then_block: then_b,
            else_block: else_b,
        });
        let env0 = self.env.clone();

        self.bb.raw_switch_to(then_b);
        let tflow = self.lower_stmts(then_body)?;
        let tenv = self.env.clone();
        let tend = self.bb.current_block();

        self.env = env0.clone();
        self.bb.raw_switch_to(else_b);
        let eflow = self.lower_stmts(else_body)?;
        let eenv = self.env.clone();
        let eend = self.bb.current_block();

        match (tflow, eflow) {
            (Flow::Terminated, Flow::Terminated) => Ok(Flow::Terminated),
            (Flow::FallThrough, Flow::Terminated) => {
                let pred = tend.expect("fall-through branch has a block");
                let merge = self.bb.raw_merge_block(Vec::new(), vec![pred]);
                self.bb.raw_end_block(pred, BlockEnd::Jump(merge));
                self.bb.raw_switch_to(merge);
                self.env = tenv;
                Ok(Flow::FallThrough)
            }
            (Flow::Terminated, Flow::FallThrough) => {
                let pred = eend.expect("fall-through branch has a block");
                let merge = self.bb.raw_merge_block(Vec::new(), vec![pred]);
                self.bb.raw_end_block(pred, BlockEnd::Jump(merge));
                self.bb.raw_switch_to(merge);
                self.env = eenv;
                Ok(Flow::FallThrough)
            }
            (Flow::FallThrough, Flow::FallThrough) => {
                let tpred = tend.expect("fall-through branch has a block");
                let epred = eend.expect("fall-through branch has a block");
                let mut phis = Vec::new();
                let mut new_env = BTreeMap::new();
                for name in env0.keys() {
                    let tv = tenv[name];
                    let ev = eenv[name];
                    if tv == ev {
                        new_env.insert(name.clone(), tv);
                    } else {
                        let def = self.bb.raw_var(name);
                        phis.push(crate::body::Phi {
                            def,
                            args: vec![tv, ev],
                        });
                        new_env.insert(name.clone(), def);
                    }
                }
                let merge = self.bb.raw_merge_block(phis, vec![tpred, epred]);
                self.bb.raw_end_block(tpred, BlockEnd::Jump(merge));
                self.bb.raw_end_block(epred, BlockEnd::Jump(merge));
                self.bb.raw_switch_to(merge);
                self.env = new_env;
                Ok(Flow::FallThrough)
            }
        }
    }

    fn lower_while(&mut self, cond: &AstCond, body: &[AstStmt]) -> Result<Flow, LowerError> {
        let mut assigned = Vec::new();
        assigned_names(body, &mut assigned);
        let carried: Vec<String> = self
            .env
            .keys()
            .filter(|k| assigned.contains(k))
            .cloned()
            .collect();

        let mut phis = Vec::new();
        let mut phi_defs = Vec::new();
        for name in &carried {
            let def = self.bb.raw_var(name);
            phis.push(crate::body::Phi {
                def,
                args: vec![self.env[name]],
            });
            phi_defs.push(def);
        }
        let preheader = self
            .bb
            .current_block()
            .expect("loop lowered on a live path");
        let header = self.bb.raw_merge_block(phis, vec![preheader]);
        self.bb.raw_end_block(preheader, BlockEnd::Jump(header));
        self.bb.raw_switch_to(header);
        for (name, def) in carried.iter().zip(&phi_defs) {
            self.env.insert(name.clone(), *def);
        }

        let ir_cond = self.lower_cond(cond)?;
        let body_b = self.bb.raw_label_block();
        let exit_b = self.bb.raw_label_block();
        self.bb.raw_end(BlockEnd::If {
            cond: ir_cond,
            then_block: body_b,
            else_block: exit_b,
        });
        let header_env = self.env.clone();

        self.bb.raw_switch_to(body_b);
        let bflow = self.lower_stmts(body)?;
        if bflow == Flow::FallThrough {
            let bend = self.bb.current_block().expect("fall-through body has a block");
            let back_args: Vec<VarId> = carried.iter().map(|n| self.env[n]).collect();
            self.bb.raw_end_block(bend, BlockEnd::Jump(header));
            self.bb.patch_merge(header, bend, &back_args);
        }

        self.env = header_env;
        self.bb.raw_switch_to(exit_b);
        Ok(Flow::FallThrough)
    }

    fn lower_cond(&mut self, c: &AstCond) -> Result<Cond, LowerError> {
        match c {
            AstCond::Cmp { op, lhs, rhs } => {
                let l = self.lower_expr(lhs)?;
                let r = self.lower_expr(rhs)?;
                Ok(Cond::Cmp { op: *op, lhs: l, rhs: r })
            }
            AstCond::InstanceOf {
                expr,
                class,
                negated,
            } => {
                let v = self.lower_expr(expr)?;
                let ty = self.ctx.class(class)?;
                Ok(Cond::InstanceOf {
                    var: v,
                    ty,
                    negated: *negated,
                })
            }
            AstCond::Truthy { expr, negated } => {
                // Boolean encoding per the paper (§5): `e` ⇒ `e != 0`,
                // `!e` ⇒ `e == 0`.
                let v = self.lower_expr(expr)?;
                let zero = self.bb.const_(0);
                let op = if *negated { CmpOp::Eq } else { CmpOp::Ne };
                Ok(Cond::Cmp { op, lhs: v, rhs: zero })
            }
            AstCond::And(..) | AstCond::Or(..) => err(format!(
                "method {:?}: && / || are only supported in `if` conditions \
                 (while conditions must be simple)",
                self.method_name
            )),
        }
    }

    /// If `e` is a bare name that is *not* a local but *is* a class, returns
    /// the class (static member access).
    fn static_class_of(&self, e: &AstExpr) -> Option<TypeId> {
        match e {
            AstExpr::Var(name) if !self.env.contains_key(name) => {
                self.ctx.classes.get(name).copied()
            }
            _ => None,
        }
    }

    fn static_field(&self, class: TypeId, name: &str) -> Result<FieldId, LowerError> {
        // Walk the superclass chain of the access site.
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(&f) = self.ctx.fields_by_owner.get(&(c, name.to_string())) {
                return Ok(f);
            }
            cur = self.ctx.supers.get(&c).copied();
        }
        err(format!("unknown static field {name:?}"))
    }

    fn unique_field(&self, name: &str) -> Result<FieldId, LowerError> {
        match self.ctx.fields.get(name).map(Vec::as_slice) {
            Some([f]) => Ok(*f),
            Some(_) => err(format!(
                "field name {name:?} is ambiguous; the frontend requires unique instance field names"
            )),
            None => err(format!("unknown field {name:?}")),
        }
    }

    fn static_method(&self, class: TypeId, name: &str) -> Result<MethodId, LowerError> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(&m) = self.ctx.methods.get(&(c, name.to_string())) {
                return Ok(m);
            }
            cur = self.ctx.supers.get(&c).copied();
        }
        err(format!("unknown static method {name:?}"))
    }

    fn lower_expr(&mut self, e: &AstExpr) -> Result<VarId, LowerError> {
        match e {
            AstExpr::Int(n) => Ok(self.bb.const_(*n)),
            AstExpr::Null => Ok(self.bb.null_()),
            AstExpr::Any => Ok(self.bb.any_prim()),
            AstExpr::This => self.env.get("this").copied().ok_or_else(|| LowerError {
                message: format!("`this` used in static method {:?}", self.method_name),
            }),
            AstExpr::New(class) => {
                let ty = self.ctx.class(class)?;
                Ok(self.bb.new_obj(ty))
            }
            AstExpr::Var(name) => self.env.get(name).copied().ok_or_else(|| LowerError {
                message: format!("unknown variable {name:?} in {:?}", self.method_name),
            }),
            AstExpr::Load { recv, field } => match self.static_class_of(recv) {
                Some(class) => {
                    let fid = self.static_field(class, field)?;
                    let obj = self.bb.null_();
                    Ok(self.bb.load(obj, fid))
                }
                None => {
                    let obj = self.lower_expr(recv)?;
                    let fid = self.unique_field(field)?;
                    Ok(self.bb.load(obj, fid))
                }
            },
            AstExpr::Call { recv, method, args } => match self.static_class_of(recv) {
                Some(class) => {
                    let target = self.static_method(class, method)?;
                    let mut a = Vec::with_capacity(args.len());
                    for arg in args {
                        a.push(self.lower_expr(arg)?);
                    }
                    Ok(self.bb.invoke_static(target, &a))
                }
                None => {
                    let obj = self.lower_expr(recv)?;
                    let mut a = Vec::with_capacity(args.len());
                    for arg in args {
                        a.push(self.lower_expr(arg)?);
                    }
                    let sel = self.pb.selector(method, args.len());
                    Ok(self.bb.invoke(obj, sel, &a))
                }
            },
            AstExpr::Catch(class) => {
                let ty = self.ctx.class(class)?;
                Ok(self.bb.catch_(ty))
            }
        }
    }
}
