//! A dense, growable bitset used for type sets and CFG analyses.
//!
//! The analysis engine manipulates sets of [`crate::TypeId`]s constantly
//! (value states, subtype masks, filter results), so the representation is
//! word-level — with one twist: storage is *banded*. A set only stores the
//! words between the lowest and highest it has ever needed (`offset` is the
//! logical index of `words[0]`), so a value state holding a handful of
//! clustered type ids costs a few words regardless of how large the
//! program's type-id space is. Binary operations iterate band overlaps, not
//! the full id range; equality and hashing are content-based (the band
//! placement of equal sets may differ).

use std::fmt;
use std::hash::{Hash, Hasher};

/// A dense-banded bitset over `usize` indices.
#[derive(Clone, Default)]
pub struct BitSet {
    /// Logical word index of `words[0]`.
    offset: u32,
    words: Vec<u64>,
}

const BITS: usize = 64;

impl BitSet {
    /// Creates an empty bitset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bitset with capacity for `n` bits starting at index
    /// zero (used by the dense CFG/subtype-mask consumers).
    pub fn with_capacity(n: usize) -> Self {
        Self {
            offset: 0,
            words: vec![0; n.div_ceil(BITS)],
        }
    }

    /// The logical word at band-external index `w` (zero outside the band).
    #[inline]
    fn word(&self, w: usize) -> u64 {
        let off = self.offset as usize;
        if w < off {
            return 0;
        }
        self.words.get(w - off).copied().unwrap_or(0)
    }

    /// Trimmed logical word bounds `(first_nonzero, last_nonzero)`.
    #[inline]
    fn bounds(&self) -> Option<(usize, usize)> {
        let first = self.words.iter().position(|&w| w != 0)?;
        let last = self.words.iter().rposition(|&w| w != 0).unwrap();
        let off = self.offset as usize;
        Some((off + first, off + last))
    }

    /// Grows the band (if needed) so logical words `lo..=hi` are backed.
    fn reserve_words(&mut self, lo: usize, hi: usize) {
        if self.words.is_empty() {
            self.offset = lo as u32;
            self.words.resize(hi - lo + 1, 0);
            return;
        }
        let off = self.offset as usize;
        if lo < off {
            let grow = off - lo;
            self.words.splice(0..0, std::iter::repeat_n(0, grow));
            self.offset = lo as u32;
        }
        let off = self.offset as usize;
        if hi >= off + self.words.len() {
            self.words.resize(hi - off + 1, 0);
        }
    }

    /// Number of storage words in the band (including interior zero words).
    /// This is the *representation width*, not the population count — the
    /// engine's width-adaptive join fast path keys off it: states a word or
    /// two wide are cheaper to re-join wholesale than to difference-track.
    pub fn word_width(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns the number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Sets bit `i`, growing the band as needed. Returns `true` if the bit
    /// was newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / BITS, i % BITS);
        self.reserve_words(w, w);
        let slot = &mut self.words[w - self.offset as usize];
        let newly = *slot & (1 << b) == 0;
        *slot |= 1 << b;
        newly
    }

    /// Clears bit `i`. Returns `true` if the bit was previously set.
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / BITS, i % BITS);
        let off = self.offset as usize;
        if w < off || w >= off + self.words.len() {
            return false;
        }
        let slot = &mut self.words[w - off];
        let was = *slot & (1 << b) != 0;
        *slot &= !(1 << b);
        was
    }

    /// Returns `true` if bit `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        self.word(i / BITS) & (1 << (i % BITS)) != 0
    }

    /// Removes all bits.
    pub fn clear(&mut self) {
        self.offset = 0;
        self.words.clear();
    }

    /// Unions `other` into `self`. Returns `true` if any bit changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let Some((lo, hi)) = other.bounds() else {
            return false;
        };
        self.reserve_words(lo, hi);
        let off = self.offset as usize;
        let mut changed = false;
        for w in lo..=hi {
            let b = other.word(w);
            let a = &mut self.words[w - off];
            changed |= b & !*a != 0;
            *a |= b;
        }
        changed
    }

    /// Unions `other` into `self` and accumulates the *newly set* bits into
    /// `delta` (word-level; the heart of difference propagation). Returns
    /// `true` if any bit changed.
    pub fn union_with_delta(&mut self, other: &BitSet, delta: &mut BitSet) -> bool {
        let Some((lo, hi)) = other.bounds() else {
            return false;
        };
        self.reserve_words(lo, hi);
        let off = self.offset as usize;
        let mut changed = false;
        for w in lo..=hi {
            let b = other.word(w);
            let a = &mut self.words[w - off];
            let new = b & !*a;
            if new != 0 {
                changed = true;
                *a |= new;
                delta.reserve_words(w, w);
                delta.words[w - delta.offset as usize] |= new;
            }
        }
        changed
    }

    /// Intersects `self` with `other` in place. Returns `true` if any bit
    /// changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let off = self.offset as usize;
        let mut changed = false;
        for (i, a) in self.words.iter_mut().enumerate() {
            let b = other.word(off + i);
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Removes all bits of `other` from `self`. Returns `true` if any bit
    /// changed.
    pub fn difference_with(&mut self, other: &BitSet) -> bool {
        let off = self.offset as usize;
        let mut changed = false;
        for (i, a) in self.words.iter_mut().enumerate() {
            let b = other.word(off + i);
            let next = *a & !b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Returns `true` if every bit of `self` is also set in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        let off = self.offset as usize;
        self.words
            .iter()
            .enumerate()
            .all(|(i, &a)| a & !other.word(off + i) == 0)
    }

    /// Returns `true` if `self` and `other` share no bit.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        let off = self.offset as usize;
        self.words
            .iter()
            .enumerate()
            .all(|(i, &a)| a & other.word(off + i) == 0)
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl PartialEq for BitSet {
    /// Content equality: band placement and slack are representation
    /// details.
    fn eq(&self, other: &BitSet) -> bool {
        match (self.bounds(), other.bounds()) {
            (None, None) => true,
            (Some((alo, ahi)), Some((blo, bhi))) => {
                alo == blo && ahi == bhi && (alo..=ahi).all(|w| self.word(w) == other.word(w))
            }
            _ => false,
        }
    }
}

impl Eq for BitSet {}

impl Hash for BitSet {
    /// Content hash matching the content-based [`PartialEq`].
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self.bounds() {
            None => 0usize.hash(state),
            Some((lo, hi)) => {
                lo.hash(state);
                for w in lo..=hi {
                    self.word(w).hash(state);
                }
            }
        }
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over set bit indices, produced by [`BitSet::iter`].
pub struct Iter<'a> {
    set: &'a BitSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some((self.set.offset as usize + self.word) * BITS + b);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_across_words() {
        let mut s = BitSet::new();
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(1000);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 1000]);
    }

    #[test]
    fn banded_storage_stays_narrow() {
        // A set holding clustered high indices must not allocate the words
        // below the cluster.
        let mut s = BitSet::new();
        s.insert(70_000);
        s.insert(70_001);
        s.insert(70_100);
        assert!(s.words.len() <= 3, "band width {} too wide", s.words.len());
        assert!(s.contains(70_000) && !s.contains(0) && !s.contains(69_000));
        // Growing downward extends the band at the front.
        s.insert(64_000);
        assert!(s.contains(64_000) && s.contains(70_100));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn equality_and_hash_ignore_band_placement() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Same content, different construction order → possibly different
        // band layouts.
        let mut a = BitSet::new();
        a.insert(500);
        a.insert(100);
        let mut b = BitSet::with_capacity(1000);
        b.insert(100);
        b.insert(500);
        assert_eq!(a, b);
        let hash = |s: &BitSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        // Removing everything equals the empty set.
        let mut c = a.clone();
        c.remove(100);
        c.remove(500);
        assert_eq!(c, BitSet::new());
        assert_ne!(a, BitSet::new());
    }

    #[test]
    fn union_with_delta_reports_exactly_the_new_bits() {
        let mut a: BitSet = [1, 2, 64].into_iter().collect();
        let b: BitSet = [2, 3, 200].into_iter().collect();
        let mut delta = BitSet::new();
        assert!(a.union_with_delta(&b, &mut delta));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3, 64, 200]);
        assert_eq!(delta.iter().collect::<Vec<_>>(), vec![3, 200]);
        // Second union adds nothing; delta accumulates (is not cleared).
        let mut delta2 = BitSet::new();
        assert!(!a.union_with_delta(&b, &mut delta2));
        assert!(delta2.is_empty());
        // Accumulation across calls.
        let c: BitSet = [3, 7].into_iter().collect();
        assert!(a.union_with_delta(&c, &mut delta));
        assert_eq!(delta.iter().collect::<Vec<_>>(), vec![3, 7, 200]);
    }

    #[test]
    fn union_intersect_difference() {
        let a: BitSet = [1, 2, 3].into_iter().collect();
        let b: BitSet = [2, 3, 4, 200].into_iter().collect();

        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 200]);
        assert!(!u.union_with(&b));

        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);

        let mut d = a.clone();
        assert!(d.difference_with(&b));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn binary_ops_across_disjoint_bands() {
        let lo: BitSet = [5].into_iter().collect();
        let hi: BitSet = [100_000].into_iter().collect();
        let mut u = lo.clone();
        assert!(u.union_with(&hi));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![5, 100_000]);
        let mut i = lo.clone();
        assert!(i.intersect_with(&hi));
        assert!(i.is_empty());
        let mut d = u.clone();
        assert!(d.difference_with(&hi));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![5]);
        assert!(lo.is_disjoint(&hi));
        assert!(lo.is_subset(&u));
        assert!(hi.is_subset(&u));
        assert!(!u.is_subset(&lo));
    }

    #[test]
    fn subset_and_disjoint() {
        let a: BitSet = [1, 2].into_iter().collect();
        let b: BitSet = [1, 2, 3].into_iter().collect();
        let c: BitSet = [9, 300].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        // Empty set is subset of everything and disjoint from everything.
        let e = BitSet::new();
        assert!(e.is_subset(&a));
        assert!(e.is_disjoint(&a));
    }

    #[test]
    fn intersect_with_shorter_other_truncates() {
        let mut a: BitSet = [1, 100].into_iter().collect();
        let b: BitSet = [1].into_iter().collect();
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn debug_format() {
        let s: BitSet = [1, 5].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1, 5}");
    }
}
