//! A dense, growable bitset used for type sets and CFG analyses.
//!
//! The analysis engine manipulates sets of [`crate::TypeId`]s constantly
//! (value states, subtype masks, filter results), so the representation is a
//! plain `Vec<u64>` with word-level operations.

use std::fmt;

/// A dense bitset over `usize` indices.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
}

const BITS: usize = 64;

impl BitSet {
    /// Creates an empty bitset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bitset with capacity for `n` bits.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(BITS)],
        }
    }

    /// Returns `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns the number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Sets bit `i`, growing the storage as needed. Returns `true` if the bit
    /// was newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / BITS, i % BITS);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Clears bit `i`. Returns `true` if the bit was previously set.
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / BITS, i % BITS);
        if w >= self.words.len() {
            return false;
        }
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Returns `true` if bit `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / BITS, i % BITS);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Removes all bits.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Unions `other` into `self`. Returns `true` if any bit changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Intersects `self` with `other` in place. Returns `true` if any bit
    /// changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (i, a) in self.words.iter_mut().enumerate() {
            let b = other.words.get(i).copied().unwrap_or(0);
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Removes all bits of `other` from `self`. Returns `true` if any bit
    /// changed.
    pub fn difference_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            let next = *a & !b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Returns `true` if every bit of `self` is also set in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words.iter().enumerate().all(|(i, &a)| {
            let b = other.words.get(i).copied().unwrap_or(0);
            a & !b == 0
        })
    }

    /// Returns `true` if `self` and `other` share no bit.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(&a, &b)| a & b == 0)
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over set bit indices, produced by [`BitSet::iter`].
pub struct Iter<'a> {
    set: &'a BitSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * BITS + b);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_across_words() {
        let mut s = BitSet::new();
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(1000);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 1000]);
    }

    #[test]
    fn union_intersect_difference() {
        let a: BitSet = [1, 2, 3].into_iter().collect();
        let b: BitSet = [2, 3, 4, 200].into_iter().collect();

        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 200]);
        assert!(!u.union_with(&b));

        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);

        let mut d = a.clone();
        assert!(d.difference_with(&b));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn subset_and_disjoint() {
        let a: BitSet = [1, 2].into_iter().collect();
        let b: BitSet = [1, 2, 3].into_iter().collect();
        let c: BitSet = [9, 300].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        // Empty set is subset of everything and disjoint from everything.
        let e = BitSet::new();
        assert!(e.is_subset(&a));
        assert!(e.is_disjoint(&a));
    }

    #[test]
    fn intersect_with_shorter_other_truncates() {
        let mut a: BitSet = [1, 100].into_iter().collect();
        let b: BitSet = [1].into_iter().collect();
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn debug_format() {
        let s: BitSet = [1, 5].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1, 5}");
    }
}
