//! # skipflow-ir
//!
//! The base-language substrate of the SkipFlow reproduction: an SSA
//! intermediate representation matching the language of the paper's
//! Appendix B.1, a class hierarchy with JVM-style virtual resolution, builder
//! APIs, a small structured source frontend, validation, and printing.
//!
//! The paper's analysis runs over Java bytecode inside GraalVM Native Image;
//! this crate plays the role of bytecode + Graal IR: programs are either
//! constructed directly with [`ProgramBuilder`]/[`BodyBuilder`] or parsed
//! from the Java-like surface syntax in [`frontend`].
//!
//! ## Quick example
//!
//! ```
//! use skipflow_ir::{ProgramBuilder, TypeRef};
//!
//! let mut pb = ProgramBuilder::new();
//! let animal = pb.add_class("Animal");
//! let dog = pb.class("Dog").extends(animal).build();
//! let speak = pb.method(animal, "speak").returns(TypeRef::Prim).build();
//! pb.set_trivial_body(speak, Some(1));
//! let program = pb.finish()?;
//!
//! assert!(program.is_subtype(dog, animal));
//! let sel = program.method(speak).selector;
//! assert_eq!(program.resolve(dog, sel), Some(speak));
//! # Ok::<(), skipflow_ir::ValidationErrors>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitset;
mod body;
pub mod builder;
pub mod cfg;
pub mod encode;
pub mod frontend;
mod ids;
mod instr;
pub mod interp;
pub mod printer;
mod program;
mod types;
pub mod validate;

pub use bitset::BitSet;
pub use body::{Block, BlockBegin, Body, Phi, VarData};
pub use builder::{BodyBuilder, BranchExit, ClassBuilder, MethodDeclBuilder, ProgramBuilder, ValidationErrors};
pub use ids::{BlockId, FieldId, MethodId, SelectorId, TypeId, VarId};
pub use instr::{BlockEnd, CmpOp, Cond, Expr, Stmt};
pub use program::Program;
pub use types::{FieldData, MethodData, SelectorData, Signature, TypeData, TypeKind, TypeRef};
pub use validate::ValidationError;
