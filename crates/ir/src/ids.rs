//! Newtype identifiers for every IR entity.
//!
//! All IR containers are arenas indexed by dense `u32` ids. The newtypes keep
//! the indices from being mixed up (C-NEWTYPE) while staying `Copy` and cheap.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a dense arena index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "id overflow");
                Self(index as u32)
            }

            /// Returns the dense arena index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub fn as_u32(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a type (class or interface) in a [`crate::Program`].
    ///
    /// `TypeId::NULL` is the reserved pseudo-type used to model `null`
    /// references inside value states (the paper treats `null` as "a special
    /// type that can be part of any value state").
    TypeId, "t"
);

define_id!(
    /// Identifier of a method in a [`crate::Program`].
    MethodId, "m"
);

define_id!(
    /// Identifier of a field declaration in a [`crate::Program`].
    FieldId, "f"
);

define_id!(
    /// Identifier of a method selector (name + arity) used for virtual
    /// dispatch.
    SelectorId, "sel"
);

define_id!(
    /// Identifier of an SSA variable inside one method body.
    VarId, "v"
);

define_id!(
    /// Identifier of a basic block inside one method body.
    BlockId, "b"
);

impl TypeId {
    /// The reserved pseudo-type for `null`.
    pub const NULL: TypeId = TypeId(0);

    /// Returns `true` if this is the `null` pseudo-type.
    #[inline]
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }
}

impl BlockId {
    /// The entry block of every method body.
    pub const ENTRY: BlockId = BlockId(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = TypeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.as_u32(), 42);
    }

    #[test]
    fn null_is_zero() {
        assert_eq!(TypeId::NULL.index(), 0);
        assert!(TypeId::NULL.is_null());
        assert!(!TypeId::from_index(1).is_null());
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(TypeId::from_index(3).to_string(), "t3");
        assert_eq!(MethodId::from_index(7).to_string(), "m7");
        assert_eq!(BlockId::ENTRY.to_string(), "b0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(VarId::from_index(1) < VarId::from_index(2));
    }

    #[test]
    #[should_panic(expected = "id overflow")]
    fn from_index_overflow_panics() {
        let _ = TypeId::from_index(u32::MAX as usize + 1);
    }
}
