//! A reference interpreter for the base language.
//!
//! The interpreter executes programs concretely (with a seeded RNG supplying
//! the values of `any()` expressions) and records a [`Trace`]: which methods
//! actually executed, which types were actually instantiated, and the
//! abstract values observed at parameter and return positions.
//!
//! Its purpose is *differential validation* of the static analysis: for any
//! program and any input, dynamically executed methods must be a subset of
//! the statically reachable set, and every observed value must be covered by
//! the corresponding static value state. The workspace-level property tests
//! run exactly this comparison on randomly generated programs.

use crate::ids::{BlockId, FieldId, MethodId, TypeId};
use crate::instr::{BlockEnd, CmpOp, Cond, Expr, Stmt};
use crate::program::Program;
use crate::types::TypeRef;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Interpreter limits and inputs.
#[derive(Clone, Debug)]
pub struct InterpConfig {
    /// Maximum number of executed statements/terminators before the run is
    /// cut off (programs may legitimately loop forever).
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_depth: usize,
    /// Seed for the values produced by `any()` expressions.
    pub seed: u64,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            max_steps: 100_000,
            max_depth: 128,
            seed: 0,
        }
    }
}

/// A runtime value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Value {
    /// A primitive integer (booleans are 0/1).
    Int(i64),
    /// A reference: `None` is `null`.
    Ref(Option<ObjId>),
}

impl Value {
    /// The `null` reference.
    pub fn null() -> Self {
        Value::Ref(None)
    }
}

/// Heap object identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(u32);

/// The lattice-free abstraction of an observed runtime value, used to check
/// value states.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObservedValue {
    /// A concrete integer.
    Int(i64),
    /// The null reference.
    Null,
    /// An object of the given runtime type.
    Obj(TypeId),
}

/// How a run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The root method returned normally.
    Returned(Option<ObservedValue>),
    /// An exception of the given type escaped the root method.
    Threw(TypeId),
    /// The step budget ran out (e.g. an infinite loop).
    BudgetExhausted,
    /// The call-depth limit was hit.
    StackOverflow,
    /// A null receiver was dereferenced (field access or invoke).
    NullDereference,
    /// Virtual dispatch found no target (ill-typed program or abstract
    /// receiver).
    UnresolvedCall,
}

/// The record of one interpreted run.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Methods whose bodies began executing.
    pub executed_methods: BTreeSet<MethodId>,
    /// Types actually allocated with `new`.
    pub instantiated: BTreeSet<TypeId>,
    /// Distinct abstract values observed per (method, parameter index).
    pub param_values: BTreeMap<(MethodId, usize), BTreeSet<ObservedValue>>,
    /// Distinct abstract values observed at each method's returns.
    pub return_values: BTreeMap<MethodId, BTreeSet<ObservedValue>>,
    /// Statements plus terminators executed.
    pub steps: u64,
    /// How the run ended.
    pub outcome: Outcome,
}

struct Object {
    ty: TypeId,
    fields: HashMap<FieldId, Value>,
}

/// A thrown exception unwinding the interpreter stack.
struct Thrown {
    ty: TypeId,
}

enum Abort {
    Budget,
    Stack,
    NullDeref,
    Unresolved,
}

enum Eval<T> {
    Ok(T),
    Threw(Thrown),
    Abort(Abort),
}

/// Runs `method` (which must be static, with parameters supplied as
/// `args`) and records a trace.
///
/// # Examples
///
/// ```
/// use skipflow_ir::frontend::compile;
/// use skipflow_ir::interp::{run, InterpConfig, ObservedValue, Outcome};
///
/// let program = compile(
///     "class Main { static method main(): int { return 41; } }",
/// )?;
/// let main_cls = program.type_by_name("Main").unwrap();
/// let main = program.method_by_name(main_cls, "main").unwrap();
/// let trace = run(&program, main, &[], &InterpConfig::default());
/// assert_eq!(trace.outcome, Outcome::Returned(Some(ObservedValue::Int(41))));
/// # Ok::<(), skipflow_ir::frontend::FrontendError>(())
/// ```
///
/// # Panics
///
/// Panics if `method` is abstract or `args` disagrees with its parameter
/// count — caller bugs, not program behaviours.
pub fn run(program: &Program, method: MethodId, args: &[Value], config: &InterpConfig) -> Trace {
    let md = program.method(method);
    assert!(md.body.is_some(), "cannot interpret an abstract method");
    assert_eq!(args.len(), md.param_count(), "argument count mismatch");
    let mut interp = Interp {
        program,
        config,
        heap: Vec::new(),
        statics: HashMap::new(),
        thrown_pool: Vec::new(),
        rng_state: config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        trace: Trace {
            executed_methods: BTreeSet::new(),
            instantiated: BTreeSet::new(),
            param_values: BTreeMap::new(),
            return_values: BTreeMap::new(),
            steps: 0,
            outcome: Outcome::BudgetExhausted,
        },
    };
    let outcome = match interp.call(method, args.to_vec(), 0) {
        Eval::Ok(v) => Outcome::Returned(v.map(|v| interp.observe(v))),
        Eval::Threw(t) => Outcome::Threw(t.ty),
        Eval::Abort(Abort::Budget) => Outcome::BudgetExhausted,
        Eval::Abort(Abort::Stack) => Outcome::StackOverflow,
        Eval::Abort(Abort::NullDeref) => Outcome::NullDereference,
        Eval::Abort(Abort::Unresolved) => Outcome::UnresolvedCall,
    };
    interp.trace.outcome = outcome;
    interp.trace
}

struct Interp<'p> {
    program: &'p Program,
    config: &'p InterpConfig,
    heap: Vec<Object>,
    /// Static fields live outside any object.
    statics: HashMap<FieldId, Value>,
    /// Every exception ever thrown (for `catch T` under the coarse model).
    thrown_pool: Vec<ObjId>,
    rng_state: u64,
    trace: Trace,
}

impl Interp<'_> {
    /// xorshift64* — deterministic `any()` values without a dependency.
    fn next_any(&mut self) -> i64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        // Small values make branch conditions interesting.
        ((x.wrapping_mul(0x2545_F491_4F6C_DD1D)) % 23) as i64 - 4
    }

    fn observe(&self, v: Value) -> ObservedValue {
        match v {
            Value::Int(n) => ObservedValue::Int(n),
            Value::Ref(None) => ObservedValue::Null,
            Value::Ref(Some(o)) => ObservedValue::Obj(self.heap[o.0 as usize].ty),
        }
    }

    fn tick(&mut self) -> Result<(), Abort> {
        self.trace.steps += 1;
        if self.trace.steps > self.config.max_steps {
            Err(Abort::Budget)
        } else {
            Ok(())
        }
    }

    fn alloc(&mut self, ty: TypeId) -> ObjId {
        self.trace.instantiated.insert(ty);
        let id = ObjId(self.heap.len() as u32);
        self.heap.push(Object {
            ty,
            fields: HashMap::new(),
        });
        id
    }

    fn default_value(&self, field: FieldId) -> Value {
        match self.program.field(field).ty {
            TypeRef::Object(_) => Value::null(),
            _ => Value::Int(0),
        }
    }

    fn call(&mut self, method: MethodId, args: Vec<Value>, depth: usize) -> Eval<Option<Value>> {
        if depth >= self.config.max_depth {
            return Eval::Abort(Abort::Stack);
        }
        self.trace.executed_methods.insert(method);
        for (i, v) in args.iter().enumerate() {
            let ov = self.observe(*v);
            self.trace
                .param_values
                .entry((method, i))
                .or_default()
                .insert(ov);
        }
        let body = self
            .program
            .method(method)
            .body
            .as_ref()
            .expect("resolved methods are concrete")
            .clone();

        let mut env: Vec<Option<Value>> = vec![None; body.vars.len()];
        for (i, p) in body.params().iter().enumerate() {
            env[p.index()] = Some(args[i]);
        }

        let mut block = BlockId::ENTRY;
        let mut prev_block: Option<BlockId> = None;
        loop {
            // Header: φ resolution against the incoming edge.
            if let crate::body::BlockBegin::Merge { phis, preds } = &body.block(block).begin {
                let from = prev_block.expect("merges are never entry blocks");
                let j = preds
                    .iter()
                    .position(|p| *p == from)
                    .expect("validated predecessor lists");
                // φs read their inputs simultaneously.
                let vals: Vec<Value> = phis
                    .iter()
                    .map(|phi| env[phi.args[j].index()].expect("validated SSA"))
                    .collect();
                for (phi, v) in phis.iter().zip(vals) {
                    env[phi.def.index()] = Some(v);
                }
            }

            for stmt in &body.block(block).stmts {
                if let Err(a) = self.tick() {
                    return Eval::Abort(a);
                }
                match self.exec_stmt(stmt, &mut env, depth) {
                    Eval::Ok(()) => {}
                    Eval::Threw(t) => return Eval::Threw(t),
                    Eval::Abort(a) => return Eval::Abort(a),
                }
            }

            if let Err(a) = self.tick() {
                return Eval::Abort(a);
            }
            match &body.block(block).end {
                BlockEnd::Return(v) => {
                    let val = v.map(|v| env[v.index()].expect("validated SSA"));
                    if let Some(val) = val {
                        let ov = self.observe(val);
                        self.trace
                            .return_values
                            .entry(method)
                            .or_default()
                            .insert(ov);
                    }
                    return Eval::Ok(val);
                }
                BlockEnd::Throw(v) => {
                    let val = env[v.index()].expect("validated SSA");
                    match val {
                        Value::Ref(Some(o)) => {
                            self.thrown_pool.push(o);
                            return Eval::Threw(Thrown {
                                ty: self.heap[o.0 as usize].ty,
                            });
                        }
                        // Throwing null or an int: treat as a null deref.
                        _ => return Eval::Abort(Abort::NullDeref),
                    }
                }
                BlockEnd::Jump(t) => {
                    prev_block = Some(block);
                    block = *t;
                }
                BlockEnd::If {
                    cond,
                    then_block,
                    else_block,
                } => {
                    let taken = match self.eval_cond(cond, &env) {
                        Some(b) => b,
                        None => return Eval::Abort(Abort::Unresolved),
                    };
                    prev_block = Some(block);
                    block = if taken { *then_block } else { *else_block };
                }
            }
        }
    }

    fn eval_cond(&self, cond: &Cond, env: &[Option<Value>]) -> Option<bool> {
        match cond {
            Cond::Cmp { op, lhs, rhs } => {
                let l = env[lhs.index()].expect("validated SSA");
                let r = env[rhs.index()].expect("validated SSA");
                match (l, r) {
                    (Value::Int(a), Value::Int(b)) => Some(op.eval(a, b)),
                    (Value::Ref(a), Value::Ref(b)) => match op {
                        CmpOp::Eq => Some(a == b),
                        CmpOp::Ne => Some(a != b),
                        _ => None, // relational on references: ill-typed
                    },
                    _ => None, // mixed: ill-typed
                }
            }
            Cond::InstanceOf { var, ty, negated } => {
                let v = env[var.index()].expect("validated SSA");
                let is = match v {
                    Value::Ref(Some(o)) => {
                        self.program.is_subtype(self.heap[o.0 as usize].ty, *ty)
                    }
                    Value::Ref(None) => false, // instanceof is false for null
                    Value::Int(_) => return None,
                };
                Some(is != *negated)
            }
        }
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        env: &mut [Option<Value>],
        depth: usize,
    ) -> Eval<()> {
        match stmt {
            Stmt::Assign { def, expr } => {
                let v = match expr {
                    Expr::Const(n) => Value::Int(*n),
                    Expr::AnyPrim => Value::Int(self.next_any()),
                    Expr::New(t) => Value::Ref(Some(self.alloc(*t))),
                    Expr::Null => Value::null(),
                };
                env[def.index()] = Some(v);
                Eval::Ok(())
            }
            Stmt::Load { def, object, field } => {
                let v = if self.program.field(*field).is_static {
                    self.statics
                        .get(field)
                        .copied()
                        .unwrap_or_else(|| self.default_value(*field))
                } else {
                    let obj = match env[object.index()].expect("validated SSA") {
                        Value::Ref(Some(o)) => o,
                        _ => return Eval::Abort(Abort::NullDeref),
                    };
                    let default = self.default_value(*field);
                    self.heap[obj.0 as usize]
                        .fields
                        .get(field)
                        .copied()
                        .unwrap_or(default)
                };
                env[def.index()] = Some(v);
                Eval::Ok(())
            }
            Stmt::Store {
                object,
                field,
                value,
            } => {
                let v = env[value.index()].expect("validated SSA");
                if self.program.field(*field).is_static {
                    self.statics.insert(*field, v);
                } else {
                    let obj = match env[object.index()].expect("validated SSA") {
                        Value::Ref(Some(o)) => o,
                        _ => return Eval::Abort(Abort::NullDeref),
                    };
                    self.heap[obj.0 as usize].fields.insert(*field, v);
                }
                Eval::Ok(())
            }
            Stmt::Invoke {
                def,
                receiver,
                selector,
                args,
            } => {
                let recv = env[receiver.index()].expect("validated SSA");
                let obj = match recv {
                    Value::Ref(Some(o)) => o,
                    _ => return Eval::Abort(Abort::NullDeref),
                };
                let ty = self.heap[obj.0 as usize].ty;
                let target = match self.program.resolve(ty, *selector) {
                    Some(m) => m,
                    None => return Eval::Abort(Abort::Unresolved),
                };
                let mut call_args = vec![recv];
                for a in args {
                    call_args.push(env[a.index()].expect("validated SSA"));
                }
                match self.call(target, call_args, depth + 1) {
                    Eval::Ok(v) => {
                        // Void results leave a token 0 behind (the analysis's
                        // artificial return value).
                        env[def.index()] = Some(v.unwrap_or(Value::Int(0)));
                        Eval::Ok(())
                    }
                    Eval::Threw(t) => Eval::Threw(t),
                    Eval::Abort(a) => Eval::Abort(a),
                }
            }
            Stmt::InvokeStatic { def, target, args } => {
                let call_args: Vec<Value> = args
                    .iter()
                    .map(|a| env[a.index()].expect("validated SSA"))
                    .collect();
                match self.call(*target, call_args, depth + 1) {
                    Eval::Ok(v) => {
                        env[def.index()] = Some(v.unwrap_or(Value::Int(0)));
                        Eval::Ok(())
                    }
                    Eval::Threw(t) => Eval::Threw(t),
                    Eval::Abort(a) => Eval::Abort(a),
                }
            }
            Stmt::Catch { def, ty } => {
                // The coarse handler model: some previously thrown exception
                // of a matching type, or null when none exists.
                let found = self
                    .thrown_pool
                    .iter()
                    .rev()
                    .copied()
                    .find(|o| self.program.is_subtype(self.heap[o.0 as usize].ty, *ty));
                env[def.index()] = Some(Value::Ref(found));
                Eval::Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::compile;

    fn run_main(src: &str) -> (Program, Trace) {
        let p = compile(src).expect("compiles");
        let main_cls = p.type_by_name("Main").unwrap();
        let main = p.method_by_name(main_cls, "main").unwrap();
        let trace = run(&p, main, &[], &InterpConfig::default());
        (p, trace)
    }

    #[test]
    fn straight_line_arithmetic() {
        let (_, t) = run_main(
            "class Main { static method main(): int { return 41; } }",
        );
        assert_eq!(t.outcome, Outcome::Returned(Some(ObservedValue::Int(41))));
        assert_eq!(t.executed_methods.len(), 1);
    }

    #[test]
    fn branches_follow_concrete_values() {
        let (p, t) = run_main(
            "class Main {
               static method yes(): int { return 1; }
               static method no(): int { return 0; }
               static method main(): int {
                 var x = 42;
                 if (x > 10) { return Main.yes(); }
                 return Main.no();
               }
             }",
        );
        let main_cls = p.type_by_name("Main").unwrap();
        assert!(t.executed_methods.contains(&p.method_by_name(main_cls, "yes").unwrap()));
        assert!(!t.executed_methods.contains(&p.method_by_name(main_cls, "no").unwrap()));
        assert_eq!(t.outcome, Outcome::Returned(Some(ObservedValue::Int(1))));
    }

    #[test]
    fn virtual_dispatch_selects_runtime_type() {
        let (_, t) = run_main(
            "abstract class A { abstract method f(): int; }
             class B extends A { method f(): int { return 2; } }
             class C extends A { method f(): int { return 3; } }
             class Main {
               static method main(): int {
                 var x = new C();
                 return x.f();
               }
             }",
        );
        assert_eq!(t.outcome, Outcome::Returned(Some(ObservedValue::Int(3))));
    }

    #[test]
    fn fields_store_and_load_with_defaults() {
        let (_, t) = run_main(
            "class Box { var v: int; var o: Box; }
             class Main {
               static method main(): int {
                 var b = new Box();
                 var before = b.v;        // default 0
                 var o = b.o;             // default null
                 if (o == null) { b.v = 7; }
                 return b.v;
               }
             }",
        );
        assert_eq!(t.outcome, Outcome::Returned(Some(ObservedValue::Int(7))));
    }

    #[test]
    fn loops_terminate_or_exhaust_budget() {
        let (_, t) = run_main(
            "class Main {
               static method main(): int {
                 var i = 0;
                 while (i < 5) { i = any(); }
                 return i;
               }
             }",
        );
        // Either the RNG eventually produced ≥ 5 (return) or the budget ran
        // out; both are legal traces.
        assert!(matches!(
            t.outcome,
            Outcome::Returned(_) | Outcome::BudgetExhausted
        ));
    }

    #[test]
    fn infinite_loop_exhausts_budget() {
        let p = compile(
            "class Main { static method main(): void {
               var going = 1;
               while (going == 1) { going = 1; }
             } }",
        )
        .unwrap();
        let main_cls = p.type_by_name("Main").unwrap();
        let main = p.method_by_name(main_cls, "main").unwrap();
        let config = InterpConfig {
            max_steps: 1_000,
            ..Default::default()
        };
        let t = run(&p, main, &[], &config);
        assert_eq!(t.outcome, Outcome::BudgetExhausted);
    }

    #[test]
    fn throw_unwinds_to_root() {
        let (p, t) = run_main(
            "class Err { }
             class Main {
               static method boom(): void { throw new Err(); }
               static method after(): void { return; }
               static method main(): void {
                 Main.boom();
                 Main.after();
               }
             }",
        );
        let err = p.type_by_name("Err").unwrap();
        assert_eq!(t.outcome, Outcome::Threw(err));
        let main_cls = p.type_by_name("Main").unwrap();
        assert!(!t.executed_methods.contains(&p.method_by_name(main_cls, "after").unwrap()));
    }

    #[test]
    fn catch_returns_matching_thrown_exception_or_null() {
        let (p, t) = run_main(
            "class Err { }
             class Main {
               static method main(): Err {
                 var e = catch (Err);     // nothing thrown yet -> null
                 return e;
               }
             }",
        );
        assert_eq!(t.outcome, Outcome::Returned(Some(ObservedValue::Null)));
        let _ = p;
    }

    #[test]
    fn null_dereference_aborts() {
        let (_, t) = run_main(
            "class A { method f(): int { return 1; } }
             class Main {
               static method main(): int {
                 var a = null;
                 return a.f();
               }
             }",
        );
        assert_eq!(t.outcome, Outcome::NullDereference);
    }

    #[test]
    fn recursion_hits_depth_limit() {
        let p = compile(
            "class Main {
               static method rec(): int { return Main.rec(); }
               static method main(): int { return Main.rec(); }
             }",
        )
        .unwrap();
        let main_cls = p.type_by_name("Main").unwrap();
        let main = p.method_by_name(main_cls, "main").unwrap();
        let t = run(&p, main, &[], &InterpConfig::default());
        assert_eq!(t.outcome, Outcome::StackOverflow);
    }

    #[test]
    fn traces_record_params_and_returns() {
        let (p, t) = run_main(
            "class Main {
               static method id(x: int): int { return x; }
               static method main(): int { return Main.id(9); }
             }",
        );
        let main_cls = p.type_by_name("Main").unwrap();
        let id = p.method_by_name(main_cls, "id").unwrap();
        assert!(t.param_values[&(id, 0)].contains(&ObservedValue::Int(9)));
        assert!(t.return_values[&id].contains(&ObservedValue::Int(9)));
    }

    #[test]
    fn any_is_deterministic_per_seed() {
        let p = compile(
            "class Main { static method main(): int { return any(); } }",
        )
        .unwrap();
        let main_cls = p.type_by_name("Main").unwrap();
        let main = p.method_by_name(main_cls, "main").unwrap();
        let a = run(&p, main, &[], &InterpConfig { seed: 7, ..Default::default() });
        let b = run(&p, main, &[], &InterpConfig { seed: 7, ..Default::default() });
        let c = run(&p, main, &[], &InterpConfig { seed: 8, ..Default::default() });
        assert_eq!(a.outcome, b.outcome);
        let _ = c; // different seeds may or may not differ; only determinism is asserted
    }

    #[test]
    fn phi_values_follow_the_taken_edge() {
        let (_, t) = run_main(
            "class Main {
               static method pick(c: int): int {
                 var x = 0;
                 if (c == 0) { x = 10; } else { x = 20; }
                 return x;
               }
               static method main(): int { return Main.pick(0); }
             }",
        );
        assert_eq!(t.outcome, Outcome::Returned(Some(ObservedValue::Int(10))));
    }
}
