//! Whole-program validation: block discipline, SSA invariants, and
//! declaration consistency.
//!
//! The checks enforce the base-language constraints of Appendix B.1:
//! `jump` targets are merges, `if` targets are labels with a single
//! predecessor, the CFG is critical-edge free (implied by the previous two),
//! every use is dominated by its definition, and every variable has exactly
//! one definition.

use crate::bitset::BitSet;
use crate::body::{Block, BlockBegin, Body};
use crate::ids::{BlockId, MethodId, TypeId, VarId};
use crate::instr::{BlockEnd, Cond, Expr, Stmt};
use crate::program::Program;
use crate::types::{TypeKind, TypeRef};
use std::fmt;

/// A single validation failure. The `method` field holds a human-readable
/// `Owner.name` label where applicable.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum ValidationError {
    /// The entry block of a body does not begin with `start`.
    EntryNotStart { method: String },
    /// A non-entry block begins with `start`.
    MisplacedStart { method: String, block: BlockId },
    /// The entry block has incoming edges.
    EntryHasPredecessors { method: String },
    /// A `jump` targets a block that is not a merge.
    JumpToNonMerge { method: String, from: BlockId, to: BlockId },
    /// An `if` successor is not a label block.
    IfToNonLabel { method: String, from: BlockId, to: BlockId },
    /// A label block has a predecessor count other than one.
    LabelPredCount { method: String, block: BlockId, count: usize },
    /// A label block's predecessor does not end with `if`.
    LabelPredNotIf { method: String, block: BlockId },
    /// A merge block's declared predecessor list disagrees with the CFG.
    MergePredMismatch { method: String, block: BlockId },
    /// A φ has a different argument count than the merge has predecessors.
    PhiArgCount { method: String, block: BlockId, phi_index: usize },
    /// A variable has more than one definition.
    DuplicateDefinition { method: String, var: VarId },
    /// A use is not dominated by its definition (or the variable is never
    /// defined).
    UseBeforeDef { method: String, block: BlockId, var: VarId },
    /// `return` arity disagrees with the declared return type.
    BadReturnArity { method: String, block: BlockId },
    /// `new T` on a non-instantiable type (interface / abstract / null).
    NewNotInstantiable { method: String, ty: TypeId },
    /// `instanceof null` or `catch null`.
    NullTypeTest { method: String },
    /// A virtual invoke's argument count disagrees with the selector arity.
    InvokeArityMismatch { method: String, block: BlockId },
    /// A static invoke targets an instance or abstract method, or the
    /// argument count disagrees.
    BadStaticInvoke { method: String, block: BlockId },
    /// An abstract method has a body.
    AbstractWithBody { method: String },
    /// A concrete method has no body.
    MissingBody { method: String },
    /// A static method is marked abstract.
    StaticAbstract { method: String },
    /// A body's parameter count disagrees with the declared signature.
    BodyParamMismatch { method: String },
    /// A superclass reference is not a class, or not declared earlier.
    BadSuperclass { ty: String },
    /// An entry in an `interfaces` list is not an interface.
    NotAnInterface { ty: String },
    /// An interface declares an instance field.
    InterfaceInstanceField { field: String },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ValidationError::*;
        match self {
            EntryNotStart { method } => write!(f, "{method}: entry block must begin with start"),
            MisplacedStart { method, block } => {
                write!(f, "{method}: non-entry block {block} begins with start")
            }
            EntryHasPredecessors { method } => {
                write!(f, "{method}: entry block has incoming edges")
            }
            JumpToNonMerge { method, from, to } => {
                write!(f, "{method}: jump {from} -> {to} targets a non-merge block")
            }
            IfToNonLabel { method, from, to } => {
                write!(f, "{method}: if {from} -> {to} targets a non-label block")
            }
            LabelPredCount { method, block, count } => {
                write!(f, "{method}: label block {block} has {count} predecessors (expected 1)")
            }
            LabelPredNotIf { method, block } => {
                write!(f, "{method}: label block {block}'s predecessor does not end with if")
            }
            MergePredMismatch { method, block } => {
                write!(f, "{method}: merge block {block} predecessor list disagrees with the CFG")
            }
            PhiArgCount { method, block, phi_index } => {
                write!(f, "{method}: φ #{phi_index} in {block} has the wrong argument count")
            }
            DuplicateDefinition { method, var } => {
                write!(f, "{method}: variable {var} has multiple definitions")
            }
            UseBeforeDef { method, block, var } => {
                write!(f, "{method}: use of {var} in {block} is not dominated by a definition")
            }
            BadReturnArity { method, block } => {
                write!(f, "{method}: return arity in {block} disagrees with the signature")
            }
            NewNotInstantiable { method, ty } => {
                write!(f, "{method}: new of non-instantiable type {ty}")
            }
            NullTypeTest { method } => write!(f, "{method}: type test against the null pseudo-type"),
            InvokeArityMismatch { method, block } => {
                write!(f, "{method}: invoke argument count disagrees with selector arity in {block}")
            }
            BadStaticInvoke { method, block } => {
                write!(f, "{method}: malformed static invoke in {block}")
            }
            AbstractWithBody { method } => write!(f, "{method}: abstract method has a body"),
            MissingBody { method } => write!(f, "{method}: concrete method has no body"),
            StaticAbstract { method } => write!(f, "{method}: static method marked abstract"),
            BodyParamMismatch { method } => {
                write!(f, "{method}: body parameter count disagrees with the signature")
            }
            BadSuperclass { ty } => write!(f, "type {ty}: malformed superclass reference"),
            NotAnInterface { ty } => write!(f, "type {ty}: implements a non-interface"),
            InterfaceInstanceField { field } => {
                write!(f, "field {field}: interfaces cannot declare instance fields")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates an entire program; returns all failures found.
pub fn validate_program(program: &Program) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    validate_hierarchy(program, &mut errors);
    for m in program.iter_methods() {
        validate_method(program, m, &mut errors);
    }
    errors
}

fn validate_hierarchy(program: &Program, errors: &mut Vec<ValidationError>) {
    for t in program.iter_types() {
        if t.is_null() {
            continue;
        }
        let td = program.type_data(t);
        if let Some(sup) = td.superclass {
            let ok = !sup.is_null()
                && sup.index() < t.index()
                && matches!(
                    program.type_data(sup).kind,
                    TypeKind::Class | TypeKind::AbstractClass
                );
            if !ok {
                errors.push(ValidationError::BadSuperclass { ty: td.name.clone() });
            }
        }
        for &i in &td.interfaces {
            if i.is_null()
                || i.index() >= t.index()
                || program.type_data(i).kind != TypeKind::Interface
            {
                errors.push(ValidationError::NotAnInterface { ty: td.name.clone() });
            }
        }
        if td.kind == TypeKind::Interface {
            for &fid in td.declared_fields() {
                if !program.field(fid).is_static {
                    errors.push(ValidationError::InterfaceInstanceField {
                        field: program.field(fid).name.clone(),
                    });
                }
            }
        }
    }
}

fn validate_method(program: &Program, m: MethodId, errors: &mut Vec<ValidationError>) {
    let md = program.method(m);
    let label = program.method_label(m);
    if md.is_static && md.is_abstract {
        errors.push(ValidationError::StaticAbstract { method: label.clone() });
    }
    match (&md.body, md.is_abstract) {
        (Some(_), true) => {
            errors.push(ValidationError::AbstractWithBody { method: label.clone() });
        }
        (None, false) => {
            errors.push(ValidationError::MissingBody { method: label.clone() });
        }
        _ => {}
    }
    let Some(body) = &md.body else { return };

    // Entry-block discipline.
    match &body.blocks[0].begin {
        BlockBegin::Start { params } => {
            if params.len() != md.param_count() {
                errors.push(ValidationError::BodyParamMismatch { method: label.clone() });
            }
        }
        _ => errors.push(ValidationError::EntryNotStart { method: label.clone() }),
    }
    for (id, block) in body.iter_blocks().skip(1) {
        if matches!(block.begin, BlockBegin::Start { .. }) {
            errors.push(ValidationError::MisplacedStart {
                method: label.clone(),
                block: id,
            });
        }
    }

    validate_cfg(body, &label, errors);
    validate_ssa(program, md.sig.ret, body, &label, errors);
    validate_instructions(program, body, &label, errors);
}

fn validate_cfg(body: &Body, label: &str, errors: &mut Vec<ValidationError>) {
    let preds = body.predecessors();
    if !preds[0].is_empty() {
        errors.push(ValidationError::EntryHasPredecessors { method: label.to_string() });
    }
    for (id, block) in body.iter_blocks() {
        match &block.end {
            BlockEnd::Jump(t) => {
                if t.index() >= body.blocks.len()
                    || !matches!(body.block(*t).begin, BlockBegin::Merge { .. })
                {
                    errors.push(ValidationError::JumpToNonMerge {
                        method: label.to_string(),
                        from: id,
                        to: *t,
                    });
                }
            }
            BlockEnd::If {
                then_block,
                else_block,
                ..
            } => {
                for t in [*then_block, *else_block] {
                    if t.index() >= body.blocks.len()
                        || !matches!(body.block(t).begin, BlockBegin::Label)
                    {
                        errors.push(ValidationError::IfToNonLabel {
                            method: label.to_string(),
                            from: id,
                            to: t,
                        });
                    }
                }
            }
            BlockEnd::Return(_) | BlockEnd::Throw(_) => {}
        }
        match &block.begin {
            BlockBegin::Label => {
                let ps = &preds[id.index()];
                if ps.len() != 1 {
                    errors.push(ValidationError::LabelPredCount {
                        method: label.to_string(),
                        block: id,
                        count: ps.len(),
                    });
                } else if !matches!(body.block(ps[0]).end, BlockEnd::If { .. }) {
                    errors.push(ValidationError::LabelPredNotIf {
                        method: label.to_string(),
                        block: id,
                    });
                }
            }
            BlockBegin::Merge { phis, preds: declared } => {
                let mut actual = preds[id.index()].clone();
                let mut listed = declared.clone();
                actual.sort_unstable();
                listed.sort_unstable();
                if actual != listed {
                    errors.push(ValidationError::MergePredMismatch {
                        method: label.to_string(),
                        block: id,
                    });
                }
                for (i, phi) in phis.iter().enumerate() {
                    if phi.args.len() != declared.len() {
                        errors.push(ValidationError::PhiArgCount {
                            method: label.to_string(),
                            block: id,
                            phi_index: i,
                        });
                    }
                }
            }
            BlockBegin::Start { .. } => {}
        }
    }
}

fn block_defs(block: &Block) -> Vec<VarId> {
    let mut defs = Vec::new();
    match &block.begin {
        BlockBegin::Start { params } => defs.extend_from_slice(params),
        BlockBegin::Merge { phis, .. } => defs.extend(phis.iter().map(|p| p.def)),
        BlockBegin::Label => {}
    }
    defs.extend(block.stmts.iter().filter_map(|s| s.def()));
    defs
}

/// Definite-assignment dataflow: `OUT[b] = IN[b] ∪ defs(b)`,
/// `IN[b] = ∩ preds OUT[p]` (optimistic initialization with the universe,
/// iterated to the greatest fixpoint). Equivalent to checking that every use
/// is dominated by its definition.
fn validate_ssa(
    program: &Program,
    ret: TypeRef,
    body: &Body,
    label: &str,
    errors: &mut Vec<ValidationError>,
) {
    let _ = program;
    let n_vars = body.vars.len();
    let n_blocks = body.blocks.len();

    // Unique definitions.
    let mut seen = vec![false; n_vars];
    for def in body.definitions() {
        if def.index() >= n_vars || seen[def.index()] {
            errors.push(ValidationError::DuplicateDefinition {
                method: label.to_string(),
                var: def,
            });
        } else {
            seen[def.index()] = true;
        }
    }

    let preds = body.predecessors();
    let universe: BitSet = (0..n_vars).collect();
    let mut out: Vec<BitSet> = vec![universe.clone(); n_blocks];
    // Iterate to fixpoint (sets only shrink).
    loop {
        let mut changed = false;
        for (id, block) in body.iter_blocks() {
            let mut in_set = if id == BlockId::ENTRY {
                BitSet::with_capacity(n_vars)
            } else if preds[id.index()].is_empty() {
                // Unreachable block: keep optimistic (its uses are vacuous),
                // but still flag locally-undefined vars below via the final
                // per-block walk using the universe as IN.
                universe.clone()
            } else {
                let mut s = universe.clone();
                for p in &preds[id.index()] {
                    s.intersect_with(&out[p.index()]);
                }
                s
            };
            for def in block_defs(block) {
                if def.index() < n_vars {
                    in_set.insert(def.index());
                }
            }
            if in_set != out[id.index()] {
                out[id.index()] = in_set;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Final pass: check each use against the flow-in set at its position.
    for (id, block) in body.iter_blocks() {
        let mut live = if id == BlockId::ENTRY {
            BitSet::with_capacity(n_vars)
        } else if preds[id.index()].is_empty() {
            universe.clone()
        } else {
            let mut s = universe.clone();
            for p in &preds[id.index()] {
                s.intersect_with(&out[p.index()]);
            }
            s
        };
        let check = |v: VarId, live: &BitSet, errors: &mut Vec<ValidationError>| {
            if v.index() >= n_vars || !live.contains(v.index()) {
                errors.push(ValidationError::UseBeforeDef {
                    method: label.to_string(),
                    block: id,
                    var: v,
                });
            }
        };
        // φ arguments are checked against the corresponding predecessor.
        if let BlockBegin::Merge { phis, preds: declared } = &block.begin {
            for phi in phis {
                for (arg, p) in phi.args.iter().zip(declared.iter()) {
                    if p.index() < n_blocks && !out[p.index()].contains(arg.index()) {
                        errors.push(ValidationError::UseBeforeDef {
                            method: label.to_string(),
                            block: id,
                            var: *arg,
                        });
                    }
                }
            }
        }
        for def in block_defs(block) {
            // Defs from the header become visible before statements run; for
            // statements we interleave below, so only add header defs here.
            if block.stmts.iter().all(|s| s.def() != Some(def)) {
                live.insert(def.index());
            }
        }
        for stmt in &block.stmts {
            for u in stmt.uses() {
                check(u, &live, errors);
            }
            if let Some(d) = stmt.def() {
                live.insert(d.index());
            }
        }
        for u in block.end.uses() {
            check(u, &live, errors);
        }
        // Return arity.
        if let BlockEnd::Return(v) = &block.end {
            let ok = match ret {
                TypeRef::Void => v.is_none(),
                _ => v.is_some(),
            };
            if !ok {
                errors.push(ValidationError::BadReturnArity {
                    method: label.to_string(),
                    block: id,
                });
            }
        }
    }
}

fn validate_instructions(
    program: &Program,
    body: &Body,
    label: &str,
    errors: &mut Vec<ValidationError>,
) {
    for (id, block) in body.iter_blocks() {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Assign { expr: Expr::New(t), .. }
                    if !program.is_instantiable(*t) => {
                        errors.push(ValidationError::NewNotInstantiable {
                            method: label.to_string(),
                            ty: *t,
                        });
                    }
                Stmt::Invoke { selector, args, .. }
                    if program.selector(*selector).arity != args.len() => {
                        errors.push(ValidationError::InvokeArityMismatch {
                            method: label.to_string(),
                            block: id,
                        });
                    }
                Stmt::InvokeStatic { target, args, .. } => {
                    let td = program.method(*target);
                    if !td.is_static || td.is_abstract || td.sig.params.len() != args.len() {
                        errors.push(ValidationError::BadStaticInvoke {
                            method: label.to_string(),
                            block: id,
                        });
                    }
                }
                Stmt::Catch { ty, .. }
                    if ty.is_null() => {
                        errors.push(ValidationError::NullTypeTest { method: label.to_string() });
                    }
                _ => {}
            }
        }
        if let BlockEnd::If { cond: Cond::InstanceOf { ty, .. }, .. } = &block.end {
            if ty.is_null() {
                errors.push(ValidationError::NullTypeTest { method: label.to_string() });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BodyBuilder, BranchExit, ProgramBuilder};
    use crate::instr::CmpOp;

    fn one_method_program(body_f: impl FnOnce(&mut BodyBuilder)) -> Result<Program, crate::builder::ValidationErrors> {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A");
        let m = pb.method(a, "run").static_().returns(TypeRef::Prim).build();
        let mut bb = BodyBuilder::new(&[]);
        body_f(&mut bb);
        pb.set_body(m, bb.finish());
        pb.finish()
    }

    #[test]
    fn accepts_well_formed_diamond() {
        let result = one_method_program(|bb| {
            let zero = bb.const_(0);
            let x = bb.any_prim();
            let j = bb.if_else(
                Cond::Cmp { op: CmpOp::Lt, lhs: x, rhs: zero },
                |bb| BranchExit::value(bb.const_(1)),
                |bb| BranchExit::value(bb.const_(2)),
            );
            bb.ret(Some(j[0]));
        });
        assert!(result.is_ok(), "{result:?}");
    }

    #[test]
    fn accepts_loops() {
        let result = one_method_program(|bb| {
            let zero = bb.const_(0);
            let hundred = bb.const_(100);
            let after = bb.while_loop(
                &[zero],
                |_, p| Cond::Cmp { op: CmpOp::Lt, lhs: p[0], rhs: hundred },
                |bb, _| BranchExit::Values(vec![bb.any_prim()]),
            );
            bb.ret(Some(after[0]));
        });
        assert!(result.is_ok(), "{result:?}");
    }

    #[test]
    fn rejects_use_before_def_across_branches() {
        // Define x only in the then-branch, use it after the merge.
        let result = one_method_program(|bb| {
            let zero = bb.const_(0);
            let c = bb.any_prim();
            let mut leaked = None;
            bb.if_else(
                Cond::Cmp { op: CmpOp::Eq, lhs: c, rhs: zero },
                |bb| {
                    leaked = Some(bb.const_(7));
                    BranchExit::fallthrough()
                },
                |_| BranchExit::fallthrough(),
            );
            bb.ret(Some(leaked.unwrap()));
        });
        let errs = result.err().expect("must be rejected").0;
        assert!(
            errs.iter().any(|e| matches!(e, ValidationError::UseBeforeDef { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_duplicate_definition() {
        let result = one_method_program(|bb| {
            let x = bb.const_(1);
            // Manually emit a second definition of the same var.
            bb.push_stmt(Stmt::Assign { def: x, expr: Expr::Const(2) });
            bb.ret(Some(x));
        });
        let errs = result.err().expect("must be rejected").0;
        assert!(
            errs.iter().any(|e| matches!(e, ValidationError::DuplicateDefinition { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_new_of_abstract_class() {
        let mut pb = ProgramBuilder::new();
        let a = pb.class("Abstract").abstract_().build();
        let host = pb.add_class("Host");
        let m = pb.method(host, "run").static_().returns(TypeRef::Void).build();
        let mut bb = BodyBuilder::new(&[]);
        let _ = bb.new_obj(a);
        bb.ret(None);
        pb.set_body(m, bb.finish());
        let errs = pb.finish().err().expect("must be rejected").0;
        assert!(
            errs.iter().any(|e| matches!(e, ValidationError::NewNotInstantiable { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_missing_body() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A");
        pb.method(a, "m").returns(TypeRef::Void).build();
        let errs = pb.finish().err().expect("must be rejected").0;
        assert!(
            errs.iter().any(|e| matches!(e, ValidationError::MissingBody { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_return_arity_mismatch() {
        let result = one_method_program(|bb| {
            bb.ret(None); // method declared to return Prim
        });
        let errs = result.err().expect("must be rejected").0;
        assert!(
            errs.iter().any(|e| matches!(e, ValidationError::BadReturnArity { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_wrong_invoke_arity() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A");
        let callee = pb.method(a, "f").params(vec![TypeRef::Prim]).returns(TypeRef::Void).build();
        pb.set_trivial_body(callee, None);
        let sel_wrong = pb.selector("f", 1);
        let m = pb.method(a, "run").returns(TypeRef::Void).build();
        pb.build_body(m, |bb| {
            let this = bb.param(0);
            let def = bb.raw_var("r");
            // Pass zero args to an arity-1 selector.
            bb.push_stmt(Stmt::Invoke {
                def,
                receiver: this,
                selector: sel_wrong,
                args: vec![],
            });
            bb.ret(None);
        });
        let errs = pb.finish().err().expect("must be rejected").0;
        assert!(
            errs.iter().any(|e| matches!(e, ValidationError::InvokeArityMismatch { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_interface_instance_field() {
        let mut pb = ProgramBuilder::new();
        let i = pb.add_interface("I", &[]);
        pb.add_field(i, "x", TypeRef::Prim);
        let errs = pb.finish().err().expect("must be rejected").0;
        assert!(
            errs.iter().any(|e| matches!(e, ValidationError::InterfaceInstanceField { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_instanceof_null() {
        let result = one_method_program(|bb| {
            let x = bb.null_();
            let j = bb.if_else(
                Cond::InstanceOf { var: x, ty: TypeId::NULL, negated: false },
                |bb| BranchExit::value(bb.const_(1)),
                |bb| BranchExit::value(bb.const_(0)),
            );
            bb.ret(Some(j[0]));
        });
        let errs = result.err().expect("must be rejected").0;
        assert!(errs.iter().any(|e| matches!(e, ValidationError::NullTypeTest { .. })), "{errs:?}");
    }
}
