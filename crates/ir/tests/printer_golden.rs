//! Golden-output test for the SSA printer: the printed form is part of the
//! debugging contract (tests and the `skipflow print` subcommand compare
//! it), so changes must be deliberate.

use skipflow_ir::frontend::compile;
use skipflow_ir::printer::print_program;

#[test]
fn printed_form_is_stable() {
    let program = compile(
        "class Box { var item: Box; }
         class Main {
           static method main(): int {
             var b = new Box();
             b.item = b;
             var i = 0;
             while (i < 3) { i = any(); }
             if (b == null) { return 0; }
             return i;
           }
         }",
    )
    .unwrap();
    let printed = print_program(&program);
    let expected = "\
class Box {
  var item: Box;
}

class Main {
  static method main(): int {
    b0: start()
      v0 <- new Box
      v0.item <- v0
      v1 <- 0
      jump b1
    b1: merge [i2 <- phi(v1, v4)] from [b0, b2]
      v3 <- 3
      if i2 < v3 then b2 else b3
    b2: label
      v4 <- any
      jump b1
    b3: label
      v5 <- null
      if v0 == v5 then b4 else b5
    b4: label
      v6 <- 0
      return v6
    b5: label
      jump b6
    b6: merge [] from [b5]
      return i2
  }
}

";
    assert_eq!(printed, expected, "printer output changed:\n{printed}");
}

#[test]
fn field_store_prints_before_loop() {
    // A second, smaller golden focused on statements the first one misses.
    let program = compile(
        "class A {
           var x: int;
           method set(v: int): void { this.x = v; }
           method get(): int { return this.x; }
         }",
    )
    .unwrap();
    let printed = print_program(&program);
    assert!(printed.contains("this0.x <- v1"), "{printed}");
    assert!(printed.contains("v1 <- this0.x"), "{printed}");
    assert!(printed.contains("method set(int): void"), "{printed}");
    assert!(printed.contains("method get(): int"), "{printed}");
}
