//! Tests for the frontend's structured-condition extensions: `else if`
//! chains and short-circuit `&&` / `||` (desugared to nested ifs with
//! duplicated branches, since the base language has no boolean values).

use skipflow_ir::frontend::compile;
use skipflow_ir::interp::{run, InterpConfig, ObservedValue, Outcome};
use skipflow_ir::{MethodId, Program};

fn main_of(p: &Program) -> MethodId {
    let c = p.type_by_name("Main").unwrap();
    p.method_by_name(c, "main").unwrap()
}

fn run_main(src: &str) -> (Program, Outcome) {
    let p = compile(src).expect("compiles");
    let main = main_of(&p);
    let t = run(&p, main, &[], &InterpConfig::default());
    (p, t.outcome)
}

#[test]
fn else_if_chains_parse_and_execute() {
    let (_, out) = run_main(
        "class Main {
           static method classify(x: int): int {
             if (x < 0) { return 0; }
             else if (x == 0) { return 1; }
             else if (x < 10) { return 2; }
             else { return 3; }
           }
           static method main(): int {
             return Main.classify(5);
           }
         }",
    );
    assert_eq!(out, Outcome::Returned(Some(ObservedValue::Int(2))));
}

#[test]
fn and_requires_both_conditions() {
    for (a, b, expected) in [(1, 1, 1), (1, 0, 0), (0, 1, 0), (0, 0, 0)] {
        let src = format!(
            "class Main {{
               static method test(x: int, y: int): int {{
                 if (x == 1 && y == 1) {{ return 1; }}
                 return 0;
               }}
               static method main(): int {{ return Main.test({a}, {b}); }}
             }}"
        );
        let (_, out) = run_main(&src);
        assert_eq!(
            out,
            Outcome::Returned(Some(ObservedValue::Int(expected))),
            "{a} && {b}"
        );
    }
}

#[test]
fn or_requires_either_condition() {
    for (a, b, expected) in [(1, 1, 1), (1, 0, 1), (0, 1, 1), (0, 0, 0)] {
        let src = format!(
            "class Main {{
               static method test(x: int, y: int): int {{
                 if (x == 1 || y == 1) {{ return 1; }}
                 return 0;
               }}
               static method main(): int {{ return Main.test({a}, {b}); }}
             }}"
        );
        let (_, out) = run_main(&src);
        assert_eq!(
            out,
            Outcome::Returned(Some(ObservedValue::Int(expected))),
            "{a} || {b}"
        );
    }
}

#[test]
fn and_short_circuits() {
    // The right operand must not be evaluated when the left is false:
    // here the right operand would null-dereference.
    let (_, out) = run_main(
        "class Box { var flag: int; }
         class Main {
           static method main(): int {
             var b = null;
             var ok = 0;
             if (ok == 1 && b.flag == 1) { return 9; }
             return 7;
           }
         }",
    );
    assert_eq!(out, Outcome::Returned(Some(ObservedValue::Int(7))));
}

#[test]
fn or_short_circuits() {
    let (_, out) = run_main(
        "class Box { var flag: int; }
         class Main {
           static method main(): int {
             var b = null;
             var ok = 1;
             if (ok == 1 || b.flag == 1) { return 9; }
             return 7;
           }
         }",
    );
    assert_eq!(out, Outcome::Returned(Some(ObservedValue::Int(9))));
}

#[test]
fn negated_conjunction_uses_de_morgan() {
    for (a, b, expected) in [(1, 1, 0), (1, 0, 1), (0, 0, 1)] {
        let src = format!(
            "class Main {{
               static method test(x: int, y: int): int {{
                 if (!(x == 1 && y == 1)) {{ return 1; }}
                 return 0;
               }}
               static method main(): int {{ return Main.test({a}, {b}); }}
             }}"
        );
        let (_, out) = run_main(&src);
        assert_eq!(
            out,
            Outcome::Returned(Some(ObservedValue::Int(expected))),
            "!({a} && {b})"
        );
    }
}

#[test]
fn precedence_and_binds_tighter_than_or() {
    // a || b && c  ≡  a || (b && c)
    for (a, b, c, expected) in [(1, 0, 0, 1), (0, 1, 1, 1), (0, 1, 0, 0)] {
        let src = format!(
            "class Main {{
               static method test(a: int, b: int, c: int): int {{
                 if (a == 1 || b == 1 && c == 1) {{ return 1; }}
                 return 0;
               }}
               static method main(): int {{ return Main.test({a}, {b}, {c}); }}
             }}"
        );
        let (_, out) = run_main(&src);
        assert_eq!(out, Outcome::Returned(Some(ObservedValue::Int(expected))));
    }
}

#[test]
fn parenthesized_groups_override_precedence() {
    // (a || b) && c
    for (a, b, c, expected) in [(1, 0, 1, 1), (1, 0, 0, 0), (0, 0, 1, 0)] {
        let src = format!(
            "class Main {{
               static method test(a: int, b: int, c: int): int {{
                 if ((a == 1 || b == 1) && c == 1) {{ return 1; }}
                 return 0;
               }}
               static method main(): int {{ return Main.test({a}, {b}, {c}); }}
             }}"
        );
        let (_, out) = run_main(&src);
        assert_eq!(out, Outcome::Returned(Some(ObservedValue::Int(expected))));
    }
}

#[test]
fn mixed_instanceof_and_comparison() {
    let (_, out) = run_main(
        "class A { }
         class B extends A { }
         class Main {
           static method main(): int {
             var x = new B();
             var n = 5;
             if (x instanceof B && n > 3) { return 1; }
             return 0;
           }
         }",
    );
    assert_eq!(out, Outcome::Returned(Some(ObservedValue::Int(1))));
}

#[test]
fn while_with_short_circuit_is_rejected_cleanly() {
    let e = compile(
        "class Main {
           static method main(): void {
             var i = 0;
             while (i < 3 && i > -1) { i = any(); }
           }
         }",
    )
    .unwrap_err();
    assert!(e.to_string().contains("while"), "{e}");
}

#[test]
fn analysis_folds_through_short_circuits() {
    // Both operands constant-false: the then branch is dead under SkipFlow
    // even through the desugared nesting.
    use skipflow_core::{analyze, AnalysisConfig};
    let p = compile(
        "class Main {
           static method dead(): void { return; }
           static method main(): void {
             var a = 0;
             var b = 1;
             if (a == 1 && b == 1) { Main.dead(); }
           }
         }",
    )
    .unwrap();
    let main = main_of(&p);
    let result = analyze(&p, &[main], &AnalysisConfig::skipflow());
    let dead = p
        .method_by_name(p.type_by_name("Main").unwrap(), "dead")
        .unwrap();
    assert!(!result.is_reachable(dead));
}
