//! SSA-construction stress tests for the frontend: nested control flow,
//! loop-carried variables through branches, and shadow-free scoping — all
//! validated by executing the compiled program on the interpreter against
//! hand-computed expectations.

use skipflow_ir::frontend::compile;
use skipflow_ir::interp::{run, InterpConfig, ObservedValue, Outcome};

fn returns(src: &str, expected: i64) {
    let p = compile(src).expect("compiles");
    let cls = p.type_by_name("Main").unwrap();
    let main = p.method_by_name(cls, "main").unwrap();
    let t = run(&p, main, &[], &InterpConfig::default());
    assert_eq!(
        t.outcome,
        Outcome::Returned(Some(ObservedValue::Int(expected))),
        "{src}"
    );
}

#[test]
fn if_inside_while_updates_carried_variables() {
    returns(
        "class Main {
           static method main(): int {
             var total = 0;
             var i = 0;
             while (i < 5) {
               if (i == 2) { total = 10; }
               i = Main.inc(i); // no arithmetic in the base language
               if (i == 5) { return total; }
             }
             return total;
           }
           static method inc(x: int): int {
             if (x == 0) { return 1; }
             if (x == 1) { return 2; }
             if (x == 2) { return 3; }
             if (x == 3) { return 4; }
             return 5;
           }
         }",
        10,
    );
}

#[test]
fn while_inside_both_if_branches() {
    returns(
        "class Main {
           static method main(): int {
             var c = 1;
             var acc = 0;
             if (c == 1) {
               var i = 0;
               while (i < 3) { acc = 7; i = Main.inc(i); }
             } else {
               var j = 0;
               while (j < 2) { acc = 9; j = Main.inc(j); }
             }
             return acc;
           }
           static method inc(x: int): int {
             if (x == 0) { return 1; }
             if (x == 1) { return 2; }
             return 3;
           }
         }",
        7,
    );
}

#[test]
fn nested_loops_with_shared_outer_variable() {
    returns(
        "class Main {
           static method main(): int {
             var hits = 0;
             var i = 0;
             while (i < 2) {
               var j = 0;
               while (j < 2) {
                 hits = Main.inc(hits);
                 j = Main.inc(j);
               }
               i = Main.inc(i);
             }
             return hits;
           }
           static method inc(x: int): int {
             if (x == 0) { return 1; }
             if (x == 1) { return 2; }
             if (x == 2) { return 3; }
             return 4;
           }
         }",
        4,
    );
}

#[test]
fn block_scoped_declarations_do_not_leak() {
    let err = compile(
        "class Main {
           static method main(): int {
             if (1 == 1) { var x = 5; }
             return x;
           }
         }",
    )
    .unwrap_err();
    assert!(err.to_string().contains("unknown variable"), "{err}");
}

#[test]
fn loop_condition_uses_outer_and_carried_vars() {
    returns(
        "class Main {
           static method main(): int {
             var limit = 3;
             var i = 0;
             while (i < limit) { i = Main.inc(i); }
             return i;
           }
           static method inc(x: int): int {
             if (x == 0) { return 1; }
             if (x == 1) { return 2; }
             return 3;
           }
         }",
        3,
    );
}

#[test]
fn early_returns_in_nested_branches() {
    returns(
        "class Main {
           static method classify(a: int, b: int): int {
             if (a == 1) {
               if (b == 1) { return 11; }
               return 10;
             } else {
               if (b == 1) { return 1; }
             }
             return 0;
           }
           static method main(): int {
             return Main.classify(1, 1);
           }
         }",
        11,
    );
}
