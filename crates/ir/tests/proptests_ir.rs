//! Property tests for the IR substrate: the bitset against a model, CmpOp
//! algebra, CFG invariants of builder-produced bodies, and dominator
//! properties.

use proptest::prelude::*;
use skipflow_ir::bitset::BitSet;
use skipflow_ir::cfg::{natural_loops, Dominators};
use skipflow_ir::{BlockBegin, BodyBuilder, BranchExit, CmpOp, Cond};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// BitSet vs BTreeSet model
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum SetOp {
    Insert(usize),
    Remove(usize),
    UnionWith(Vec<usize>),
    IntersectWith(Vec<usize>),
    DifferenceWith(Vec<usize>),
}

fn arb_op() -> impl Strategy<Value = SetOp> {
    prop_oneof![
        (0usize..300).prop_map(SetOp::Insert),
        (0usize..300).prop_map(SetOp::Remove),
        proptest::collection::vec(0usize..300, 0..10).prop_map(SetOp::UnionWith),
        proptest::collection::vec(0usize..300, 0..10).prop_map(SetOp::IntersectWith),
        proptest::collection::vec(0usize..300, 0..10).prop_map(SetOp::DifferenceWith),
    ]
}

proptest! {
    #[test]
    fn bitset_matches_btreeset_model(ops in proptest::collection::vec(arb_op(), 0..40)) {
        let mut bits = BitSet::new();
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for op in ops {
            match op {
                SetOp::Insert(i) => {
                    let newly = bits.insert(i);
                    prop_assert_eq!(newly, model.insert(i));
                }
                SetOp::Remove(i) => {
                    let was = bits.remove(i);
                    prop_assert_eq!(was, model.remove(&i));
                }
                SetOp::UnionWith(other) => {
                    let o: BitSet = other.iter().copied().collect();
                    bits.union_with(&o);
                    model.extend(other);
                }
                SetOp::IntersectWith(other) => {
                    let o: BitSet = other.iter().copied().collect();
                    bits.intersect_with(&o);
                    let keep: BTreeSet<usize> = other.into_iter().collect();
                    model.retain(|x| keep.contains(x));
                }
                SetOp::DifferenceWith(other) => {
                    let o: BitSet = other.iter().copied().collect();
                    bits.difference_with(&o);
                    for x in other {
                        model.remove(&x);
                    }
                }
            }
            prop_assert_eq!(bits.len(), model.len());
            prop_assert_eq!(bits.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
            prop_assert_eq!(bits.is_empty(), model.is_empty());
        }
    }

    #[test]
    fn bitset_subset_and_disjoint_match_model(
        a in proptest::collection::btree_set(0usize..200, 0..20),
        b in proptest::collection::btree_set(0usize..200, 0..20),
    ) {
        let ba: BitSet = a.iter().copied().collect();
        let bb: BitSet = b.iter().copied().collect();
        prop_assert_eq!(ba.is_subset(&bb), a.is_subset(&b));
        prop_assert_eq!(ba.is_disjoint(&bb), a.is_disjoint(&b));
    }

    // -----------------------------------------------------------------------
    // CmpOp algebra
    // -----------------------------------------------------------------------

    #[test]
    fn cmp_op_laws(l in -50i64..50, r in -50i64..50) {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            // inv is logical negation.
            prop_assert_eq!(op.eval(l, r), !op.invert().eval(l, r));
            // flip swaps operands.
            prop_assert_eq!(op.eval(l, r), op.flip().eval(r, l));
            // double inversion / flip are identities.
            prop_assert_eq!(op.invert().invert(), op);
            prop_assert_eq!(op.flip().flip(), op);
            // flip∘inv == inv∘flip.
            prop_assert_eq!(op.invert().flip(), op.flip().invert());
        }
    }

    // -----------------------------------------------------------------------
    // Builder CFG invariants
    // -----------------------------------------------------------------------

    /// Random nestings of if/else and while produced through the structured
    /// builder are always valid and have consistent dominators.
    #[test]
    fn structured_builder_output_is_well_formed(shape in proptest::collection::vec(0u8..4, 1..8)) {
        let mut bb = BodyBuilder::new(&["p"]);
        let p = bb.param(0);
        for s in &shape {
            let c = bb.const_(i64::from(*s));
            match s % 3 {
                0 => {
                    bb.if_then(
                        Cond::Cmp { op: CmpOp::Lt, lhs: p, rhs: c },
                        |bb| {
                            let _ = bb.any_prim();
                            BranchExit::fallthrough()
                        },
                    );
                }
                1 => {
                    let j = bb.if_else(
                        Cond::Cmp { op: CmpOp::Eq, lhs: p, rhs: c },
                        |bb| BranchExit::value(bb.const_(1)),
                        |bb| BranchExit::value(bb.const_(2)),
                    );
                    let _ = j;
                }
                _ => {
                    let init = bb.const_(0);
                    bb.while_loop(
                        &[init],
                        |_, ph| Cond::Cmp { op: CmpOp::Lt, lhs: ph[0], rhs: c },
                        |bb, _| BranchExit::Values(vec![bb.any_prim()]),
                    );
                }
            }
        }
        bb.ret(Some(p));
        let body = bb.finish();

        // The body passes full validation inside a one-method program.
        let mut pb = skipflow_ir::ProgramBuilder::new();
        let a = pb.add_class("A");
        let m = pb
            .method(a, "m")
            .static_()
            .params(vec![skipflow_ir::TypeRef::Prim])
            .returns(skipflow_ir::TypeRef::Prim)
            .build();
        pb.set_body(m, body.clone());
        prop_assert!(pb.finish().is_ok());

        // Dominator sanity: the entry dominates every reachable block, and
        // loop count equals the number of while shapes emitted.
        let doms = Dominators::compute(&body);
        for (id, _) in body.iter_blocks() {
            if doms.is_reachable(id) {
                prop_assert!(doms.dominates(skipflow_ir::BlockId::ENTRY, id));
            }
        }
        let whiles = shape.iter().filter(|s| *s % 3 == 2).count();
        prop_assert_eq!(natural_loops(&body, &doms).len(), whiles);

        // Merge predecessor lists agree with the CFG (spot-check of the
        // validator's own invariant).
        let preds = body.predecessors();
        for (id, block) in body.iter_blocks() {
            if let BlockBegin::Merge { preds: declared, .. } = &block.begin {
                let mut a: Vec<_> = declared.clone();
                let mut b = preds[id.index()].clone();
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b);
            }
        }
    }
}
