//! Regenerates the paper's Table 1.
//!
//! ```text
//! cargo run --release -p skipflow-bench --bin table1 -- [--suite all|dacapo|renaissance|microservices|quick]
//! ```

use skipflow_bench::{render_csv, render_real_sizes, render_table1, run_suite};
use skipflow_synth::suites;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    let real_size = args.iter().any(|a| a == "--real-size");
    let suite = args
        .iter()
        .position(|a| a == "--suite")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all");

    let blocks: Vec<(&str, Vec<skipflow_synth::BenchmarkSpec>)> = match suite {
        "dacapo" => vec![("DaCapo", suites::dacapo())],
        "renaissance" => vec![("Renaissance", suites::renaissance())],
        "microservices" => vec![("Microservices", suites::microservices())],
        "quick" => vec![("Quick", suites::quick())],
        "all" => vec![
            ("DaCapo", suites::dacapo()),
            ("Microservices", suites::microservices()),
            ("Renaissance", suites::renaissance()),
        ],
        other => {
            eprintln!("unknown suite {other:?}; use all|dacapo|renaissance|microservices|quick");
            std::process::exit(2);
        }
    };

    if csv {
        // One CSV stream across all requested blocks.
        for (_, specs) in blocks {
            print!("{}", render_csv(&run_suite(&specs)));
        }
        return;
    }
    println!("Table 1 — results for all bench suites (lower is better)\n");
    for (name, specs) in blocks {
        println!("=== {name} ===");
        let pairs = run_suite(&specs);
        println!("{}", render_table1(&pairs));
        if real_size {
            println!("Real encoded binary sizes after shrinking:");
            println!("{}", render_real_sizes(&specs));
        }
    }
}
