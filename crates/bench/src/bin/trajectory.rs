//! The perf-trajectory binary: runs the synth ladder and the table1 corpus
//! and writes a `BENCH_PR<n>.json` record for the repository's performance
//! history.
//!
//! ```text
//! cargo run --release -p skipflow-bench --bin trajectory -- \
//!     [--out BENCH_PR1.json] [--pr PR1] [--ladder-only] \
//!     [--baseline BENCH_PR1_prechange.json]
//! ```
//!
//! `--baseline` points at a previous run of this same harness (typically
//! captured before a perf change); the summary then records the wall-time
//! reduction on the largest ladder rung against it.

use skipflow_bench::trajectory::{render_json, run_ladder, run_table1};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = get("--out").unwrap_or_else(|| "BENCH_PR1.json".to_string());
    let pr = get("--pr").unwrap_or_else(|| "PR1".to_string());
    let ladder_only = args.iter().any(|a| a == "--ladder-only");
    let baseline = get("--baseline").map(|p| {
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read baseline {p}: {e}"))
    });

    eprintln!("running ladder…");
    let mut workloads = run_ladder();
    if !ladder_only {
        eprintln!("running table1 corpus…");
        workloads.extend(run_table1());
    }

    let json = render_json(&pr, &workloads, baseline.as_deref());
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    // Human-readable recap of the ladder on stderr-free stdout.
    println!(
        "{:<12} {:>9} {:<10} {:<12} {:>10} {:>10} {:>12} {:>9} {:>7}",
        "workload", "methods", "config", "solver", "wall[ms]", "steps", "joins", "reach", "dead"
    );
    for w in workloads.iter().filter(|w| w.kind == "ladder") {
        for r in &w.runs {
            println!(
                "{:<12} {:>9} {:<10} {:<12} {:>10.2} {:>10} {:>12} {:>9} {:>7}",
                w.name,
                w.generated_methods,
                r.config,
                r.solver,
                r.wall_ms,
                r.steps,
                r.state_joins,
                r.reachable_methods,
                r.dead_blocks
            );
        }
    }
}
