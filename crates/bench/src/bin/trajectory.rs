//! The perf-trajectory binary: runs the synth ladder, the fan-out rungs,
//! the resume, serve, and edit families, and the table1 corpus, and writes
//! a `BENCH_PR<n>.json` record for the repository's performance history.
//!
//! ```text
//! cargo run --release -p skipflow-bench --bin trajectory -- \
//!     [--out BENCH_PR5.json] [--pr PR5] [--ladder-only] [--skip-table1] \
//!     [--scheduler fifo] [--skip-paired] \
//!     [--baseline BENCH_PR4.json] \
//!     [--check-steps BENCH_PR5.json]
//! ```
//!
//! * `--ladder-only` runs only the ladder family — it now does what its
//!   name says. (It previously *kept* the fan-out and resume rungs and
//!   only skipped table1, which let CI pass the flag believing the full
//!   rung set was gated; CI now runs everything except table1 via
//!   `--skip-table1`, and a capture workload missing from a `--ladder-only`
//!   run fails the step gate loudly instead of passing vacuously.)
//! * `--skip-table1` skips only the table1 corpus (the step gate never
//!   reads it); the ladder, fan-out, and resume rungs all run and are all
//!   gated.
//! * `--scheduler fifo` forces the PR 1 FIFO worklist (and disables the
//!   narrow-join fast path) on every delta solver — the *pre-change
//!   capture* mode, so baseline and change are measured by the same
//!   binary on the same machine.
//! * `--skip-paired` skips the paired wall-time-guard measurements
//!   (adaptive-vs-FIFO per ladder rung, delta-vs-Reference on the
//!   largest) — they cost ~100 extra analyses per rung and only matter
//!   for committed captures; the CI step gate passes this flag.
//! * `--baseline` points at a previous run of this same harness; the
//!   summary then records wall-time and step-count reductions on the
//!   largest ladder and fan-out rungs against it.
//! * `--check-steps` compares the current run's `SkipFlow`/`sequential`
//!   step counts per scaling workload against a committed capture and
//!   exits non-zero on a > 20 % regression. Steps are deterministic per
//!   corpus, so the gate is machine-independent (wall time is not).

use skipflow_bench::trajectory::{
    parse_baseline_steps, parse_baseline_workloads, render_json_document, run_edits, run_fanout,
    run_ladder, run_resume, run_serve, run_table1,
};

/// Maximum tolerated step-count growth versus the committed capture.
const STEP_REGRESSION_TOLERANCE: f64 = 0.20;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = get("--out").unwrap_or_else(|| "BENCH_PR2.json".to_string());
    let pr = get("--pr").unwrap_or_else(|| "PR2".to_string());
    let ladder_only = args.iter().any(|a| a == "--ladder-only");
    let skip_table1 = args.iter().any(|a| a == "--skip-table1");
    let skip_paired = args.iter().any(|a| a == "--skip-paired");
    let force_fifo = match get("--scheduler").as_deref() {
        Some("fifo") => true,
        Some("scc") | None => false,
        Some(other) => panic!("unknown --scheduler {other} (expected fifo|scc)"),
    };
    let baseline = get("--baseline").map(|p| {
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read baseline {p}: {e}"))
    });
    let check_steps = get("--check-steps").map(|p| {
        (
            p.clone(),
            std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read capture {p}: {e}")),
        )
    });

    eprintln!("running ladder…");
    let mut workloads = run_ladder(force_fifo, !skip_paired);
    let mut serve = Vec::new();
    let mut edits = Vec::new();
    if !ladder_only {
        eprintln!("running fan-out rungs…");
        workloads.extend(run_fanout(force_fifo));
        eprintln!("running resume rungs…");
        workloads.extend(run_resume(force_fifo));
        // The serve and edit families post-date the pre-change capture
        // mode: a `--scheduler fifo` document emulates the solver before
        // the server and retraction existed, so it carries neither block.
        if !force_fifo {
            eprintln!("running serve family…");
            serve = run_serve();
            eprintln!("running edit family…");
            edits = run_edits();
        }
        if !skip_table1 {
            eprintln!("running table1 corpus…");
            workloads.extend(run_table1());
        }
    }

    let json = render_json_document(&pr, &workloads, &serve, &edits, baseline.as_deref());
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    // Human-readable recap of the serve family on stdout.
    for s in &serve {
        println!(
            "{:<12} {:<5} coalescing {:>5.1} roots/batch, {:>9.0} queries/s during solve, \
             publication latency {:>7.2} ms",
            s.name, s.scheduler, s.coalescing_ratio, s.queries_per_sec_during_solve,
            s.publication_latency_ms
        );
    }

    // Human-readable recap of the edit family on stdout.
    for e in &edits {
        println!(
            "{:<16} {} mutations / {} solves: invalidated {} methods / {} flows, \
             re-derive {} steps vs fresh {} ({:.2}x), {:.1} ms",
            e.name, e.script_steps, e.solve_points, e.invalidated_methods, e.invalidated_flows,
            e.rederive_steps, e.fresh_steps, e.rederive_fresh_ratio, e.wall_ms
        );
    }

    // Human-readable recap of the scaling families on stdout.
    println!(
        "{:<12} {:>9} {:<10} {:<12} {:<5} {:>10} {:>10} {:>12} {:>9} {:>7}",
        "workload", "methods", "config", "solver", "sched", "wall[ms]", "steps", "joins", "reach",
        "dead"
    );
    for w in workloads.iter().filter(|w| w.kind != "table1") {
        for r in &w.runs {
            println!(
                "{:<12} {:>9} {:<10} {:<12} {:<5} {:>10.2} {:>10} {:>12} {:>9} {:>7}",
                w.name,
                w.generated_methods,
                r.config,
                r.solver,
                r.scheduler,
                r.wall_ms,
                r.steps,
                r.state_joins,
                r.reachable_methods,
                r.dead_blocks
            );
        }
    }

    // CI step-count regression gate.
    if let Some((path, capture)) = check_steps {
        let mut failures = Vec::new();
        for name in parse_baseline_workloads(&capture) {
            let Some(committed) = parse_baseline_steps(&capture, &name) else { continue };
            let current = workloads
                .iter()
                .filter(|w| w.name == name)
                .flat_map(|w| &w.runs)
                .find(|r| r.config == "SkipFlow" && r.solver == "sequential");
            let Some(current) = current else {
                // A committed workload that no longer runs means the rung
                // set changed without re-capturing the baseline — fail
                // loudly instead of letting the gate pass vacuously.
                failures.push(format!(
                    "{name}: present in the committed capture but missing from this run \
                     (rung set changed? regenerate the capture)"
                ));
                continue;
            };
            let ratio = current.steps as f64 / committed as f64;
            eprintln!(
                "check-steps: {name}: {} steps vs committed {committed} ({:+.1} %)",
                current.steps,
                (ratio - 1.0) * 100.0
            );
            if ratio > 1.0 + STEP_REGRESSION_TOLERANCE {
                failures.push(format!(
                    "{name}: {} steps vs committed {committed} (+{:.1} % > {:.0} % tolerance)",
                    current.steps,
                    (ratio - 1.0) * 100.0,
                    STEP_REGRESSION_TOLERANCE * 100.0
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("step-count regression against {path}:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        eprintln!("check-steps: no regression against {path}");
    }
}
