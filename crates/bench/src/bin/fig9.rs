//! Regenerates the paper's Figure 9: all metrics normalized to the PTA
//! baseline, one panel per suite.
//!
//! ```text
//! cargo run --release -p skipflow-bench --bin fig9
//! ```

use skipflow_bench::{normalize, render_fig9, run_suite};
use skipflow_synth::suites;

fn main() {
    for (name, specs) in [
        ("(a) Renaissance", suites::renaissance()),
        ("(b) DaCapo", suites::dacapo()),
        ("(c) Microservices", suites::microservices()),
    ] {
        let pairs = run_suite(&specs);
        let rows = normalize(&pairs);
        println!("{}", render_fig9(name, &rows));
        // The paper's headline numbers: per-suite metric averages.
        let avg_methods: f64 = rows.iter().map(|r| r.series[2]).sum::<f64>() / rows.len() as f64;
        let avg_analysis: f64 = rows.iter().map(|r| r.series[0]).sum::<f64>() / rows.len() as f64;
        println!(
            "suite averages: reachable methods {avg_methods:.3}, analysis time {avg_analysis:.3}\n"
        );
    }
}
