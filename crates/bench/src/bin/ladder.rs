//! The precision ladder across the whole corpus: CHA ⊇ RTA ⊇ PTA ⊇ SkipFlow
//! reachable methods per benchmark — the comparator landscape the paper's
//! §6 discusses (CHA/RTA precision is too low for Native Image; PTA is the
//! production baseline; SkipFlow improves on it).
//!
//! ```text
//! cargo run --release -p skipflow-bench --bin ladder [-- --suite quick]
//! ```

use skipflow_baselines::{class_hierarchy_analysis, rapid_type_analysis};
use skipflow_core::{analyze, AnalysisConfig};
use skipflow_synth::{build_benchmark, suites};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let suite = args
        .iter()
        .position(|a| a == "--suite")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all");
    let specs = match suite {
        "quick" => suites::quick(),
        "dacapo" => suites::dacapo(),
        "renaissance" => suites::renaissance(),
        "microservices" => suites::microservices(),
        _ => suites::all(),
    };

    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>10} {:>12}",
        "Benchmark", "CHA", "RTA", "PTA", "SkipFlow", "SkipFlow/CHA"
    );
    println!("{}", "-".repeat(80));
    let mut totals = [0usize; 4];
    for spec in specs {
        let bench = build_benchmark(&spec);
        let cha = class_hierarchy_analysis(&bench.program, &bench.roots);
        let rta = rapid_type_analysis(&bench.program, &bench.roots);
        let pta = analyze(&bench.program, &bench.roots, &AnalysisConfig::baseline_pta());
        let skf = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());
        let row = [
            cha.reachable_count(),
            rta.reachable_count(),
            pta.reachable_methods().len(),
            skf.reachable_methods().len(),
        ];
        assert!(row[3] <= row[2] && row[2] <= row[1] && row[1] <= row[0], "ladder violated");
        for (t, r) in totals.iter_mut().zip(row) {
            *t += r;
        }
        println!(
            "{:<28} {:>8} {:>8} {:>8} {:>10} {:>11.3}",
            spec.name,
            row[0],
            row[1],
            row[2],
            row[3],
            row[3] as f64 / row[0] as f64
        );
    }
    println!("{}", "-".repeat(80));
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>10} {:>11.3}",
        "TOTAL",
        totals[0],
        totals[1],
        totals[2],
        totals[3],
        totals[3] as f64 / totals[0] as f64
    );
}
