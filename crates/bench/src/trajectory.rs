//! The perf-trajectory harness: a fixed workload set measured the same way
//! in every PR, so the repository accumulates a comparable performance
//! record (`BENCH_PR<n>.json` at the repo root).
//!
//! Four workload families:
//!
//! * **ladder** — synthetic programs of doubling size at fixed shape
//!   (fanout 8, 20% guarded-dead), stressing solver scaling; the largest
//!   rung is the headline number.
//! * **fanout** — shared-field fan-out programs of doubling reader count
//!   (one field sink feeding hundreds of readers), the regime where
//!   difference propagation and SCC-priority scheduling are asymptotically
//!   better than full re-joins and FIFO ordering.
//! * **resume** — the session API's incremental-root workload: solve a
//!   benchmark's own roots, then `add_roots` a spread of extra entry points
//!   and re-solve. Each record carries the *fresh* union fixpoint
//!   (`SkipFlow`/`sequential`, the row the step gate checks) next to the
//!   *incremental* re-solve (`SkipFlow-resume`): same results, far fewer
//!   steps.
//! * **serve** — the analysis-server workload: an in-process
//!   `skipflow_server::Registry` session measured for batch coalescing
//!   (queued roots per writer batch), sustained query throughput while a
//!   solve is in flight (the lock-free epoch publication's headline
//!   number), and epoch publication latency (roots accepted → settled
//!   epoch visible). Serve records live in their own JSON block with their
//!   own schema; the step gate never reads them.
//! * **edit** — the non-monotone incrementality workload: a seeded
//!   [`skipflow_synth::build_edit_script`] stream of root additions, root
//!   *retractions*, and method-body *edits* driven through one
//!   [`AnalysisSession`], measuring the invalidated region (methods and
//!   flows reset by the DRed-style over-delete) and the re-derive steps
//!   against a fresh solve of the script's final configuration — whose
//!   fixpoint the session must match exactly. Edit records live in their
//!   own JSON block like serve records; the step gate never reads them.
//! * **table1** — the full 35-benchmark corpus under PTA and SkipFlow,
//!   sequential solver, mirroring the paper's evaluation.
//!
//! Per run the harness records wall time, worklist steps, state joins (the
//! propagation volume), the peak flow count, and the precision outcomes
//! (reachable methods, dead blocks) so perf changes that silently alter
//! results are caught immediately. All three schedulers are measured side
//! by side (`scheduler` field: `adaptive` — the default, primary row —
//! plus forced `scc` and `fifo`), along with a narrow-join-disabled
//! ablation row (`narrow_join: 0`), so one document carries the
//! scheduler comparison and the fast-path ablation; a pre-change capture
//! (PR 3 behaviour: FIFO, no fast path) is produced by running the same
//! binary with `--scheduler fifo`.

use skipflow_core::{
    analyze, AnalysisConfig, AnalysisResult, AnalysisSession, CancelToken, SchedulerKind,
    SolverKind,
};
use skipflow_ir::MethodId;
use skipflow_synth::{build_benchmark, Benchmark, BenchmarkSpec, Suite};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured (workload × config × solver × scheduler) cell.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Configuration label (`PTA` / `SkipFlow`).
    pub config: String,
    /// Solver label (`sequential` / `parallel-N` / `reference`).
    pub solver: String,
    /// Scheduler label (`adaptive` / `scc` / `fifo`; the reference solver
    /// is always `fifo`).
    pub scheduler: String,
    /// The narrow-join fast-path width the run was configured with (0 =
    /// disabled — the ablation row).
    pub narrow_join: usize,
    /// Adaptive FIFO→SCC flips the run performed (0 under forced
    /// schedulers and when the re-push rate never tripped).
    pub flips: u64,
    /// Wall-clock analysis time in milliseconds.
    pub wall_ms: f64,
    /// Worklist steps executed.
    pub steps: u64,
    /// Of `steps`, the width-adaptive full-join fast-path steps.
    pub full_join_steps: u64,
    /// Input-state joins that changed a state.
    pub state_joins: u64,
    /// Peak flow count (the PVPG arena only grows).
    pub flows: usize,
    /// Use edges in the final PVPG.
    pub use_edges: usize,
    /// Order-violating edge insertions the online order repaired in place
    /// (0 under FIFO/reference, which never maintain the order) — the
    /// bounded maintenance that replaced the batch `scc_recomputes` of the
    /// v3 schema.
    pub order_repairs: u64,
    /// Component unions performed by online cycle collapses.
    pub scc_merges: u64,
    /// Parallel SCC rounds taken (0 for sequential solvers).
    pub antichain_rounds: u64,
    /// Buckets drained by those rounds (> rounds ⇔ multi-bucket batching).
    pub antichain_batched_buckets: u64,
    /// Rounds that declined antichain batching over pending structural
    /// changes — structurally 0 since the online-order scheduler; recorded
    /// so the summary guard can assert it stays that way.
    pub dirty_round_skips: u64,
    /// Reachable methods (precision guard).
    pub reachable_methods: usize,
    /// Dead blocks across reachable methods (precision guard).
    pub dead_blocks: usize,
}

/// All runs of one workload.
#[derive(Clone, Debug)]
pub struct WorkloadRecord {
    /// Workload name (`rung-8000`, `fanout-400`, `sunflow`, …).
    pub name: String,
    /// Workload family (`ladder` / `fanout` / `table1`).
    pub kind: &'static str,
    /// Concrete methods the generator emitted.
    pub generated_methods: usize,
    /// The measured runs.
    pub runs: Vec<RunRecord>,
    /// Adaptive-vs-FIFO wall-time ratio from a *paired* measurement
    /// (ladder rungs only): the two configurations alternate back-to-back
    /// with the order swapped each pair, so machine drift cancels — the
    /// independently measured rows above cannot resolve the ±2 % guard on
    /// a shared machine.
    pub adaptive_fifo_wall_ratio: Option<f64>,
    /// Narrow-join delta vs full-join Reference wall-time ratio from the
    /// same paired protocol (largest ladder rung of a default capture
    /// only) — the "delta is no longer slower than Reference on
    /// narrow-state corpora" guard.
    pub delta_reference_wall_ratio: Option<f64>,
    /// Armed-guard vs unarmed solve wall-time ratio from the same paired
    /// protocol (largest ladder rung of a default capture only): a
    /// `solve_interruptible` run carrying a never-tripped cancel token
    /// against the identical solve with no guard. The PR 6 interrupt
    /// machinery promises the strided poll costs ≤ 1 % wall time — this is
    /// the number that guard is judged on.
    pub interrupt_overhead_wall_ratio: Option<f64>,
}

/// The ladder rungs: doubling method counts at fixed shape. The largest
/// rung is the one the acceptance criteria quote.
pub fn ladder_specs() -> Vec<BenchmarkSpec> {
    [2000usize, 4000, 8000, 16000, 32000]
        .into_iter()
        .map(|n| {
            BenchmarkSpec::new(&format!("rung-{n}"), Suite::DaCapo, n, 0.2).with_fanout(8)
        })
        .collect()
}

/// The fan-out rungs: one shared field sink feeding a doubling number of
/// readers (writers double alongside, so the sink's state width grows
/// too). Reader wiring precedes the writes, so every stored type is an
/// incremental update that must fan out to every reader.
pub fn fanout_specs() -> Vec<BenchmarkSpec> {
    [(100usize, 64usize), (200, 128), (400, 256)]
        .into_iter()
        .map(|(readers, writers)| {
            BenchmarkSpec::new(&format!("fanout-{readers}"), Suite::DaCapo, 60, 0.0)
                .with_shared_sink(readers, writers)
        })
        .collect()
}

/// The resume rungs: one ladder-shaped and one fan-out-shaped workload at
/// moderate size, solved from their own roots and then resumed with
/// [`RESUME_EXTRA_ROOTS`] added entry points.
pub fn resume_specs() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec::new("resume-rung-2000", Suite::DaCapo, 2000, 0.2).with_fanout(8),
        BenchmarkSpec::new("resume-fanout-200", Suite::DaCapo, 60, 0.0).with_shared_sink(200, 128),
    ]
}

/// Extra entry points added to each resume rung before the re-solve.
pub const RESUME_EXTRA_ROOTS: usize = 16;

/// Measures one resume rung under `config`: the fresh fixpoint over the
/// union of the benchmark roots and `extra`, and the incremental re-solve
/// that reaches the same fixpoint by resuming a session already saturated
/// over the benchmark roots. Returns `(fresh, incremental)` records; the
/// incremental record's wall time and steps cover *only* the `add_roots` +
/// re-solve. Panics if the two fixpoints disagree on the precision guards —
/// the bit-level identity is enforced by `tests/session_resume.rs`, but a
/// perf document must never be produced from diverging runs.
pub fn measure_resume(
    bench: &Benchmark,
    extra: &[MethodId],
    config: &AnalysisConfig,
    iters: usize,
) -> (RunRecord, RunRecord) {
    let config = config
        .clone()
        .with_reflective_roots(bench.reflective_roots.iter().copied());
    let union_roots: Vec<MethodId> = bench.roots.iter().chain(extra).copied().collect();

    // Fresh union runs: warm-up, then the best (minimum-wall) iteration —
    // wall time *and* result are taken from the same iteration, so the row
    // is internally consistent.
    let _warmup = analyze(&bench.program, &union_roots, &config);
    let mut fresh_best: Option<(f64, AnalysisResult)> = None;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let r = analyze(&bench.program, &union_roots, &config);
        let wall = start.elapsed().as_secs_f64() * 1e3;
        if fresh_best.as_ref().is_none_or(|(w, _)| wall < *w) {
            fresh_best = Some((wall, r));
        }
    }
    let (fresh_wall, fresh_result) = fresh_best.expect("at least one fresh run");

    // Incremental runs: the session solves the benchmark roots to fixpoint,
    // then the timed region is add_roots(extra) + re-solve. All row fields
    // (wall, steps, joins, result) come from the single minimum-wall
    // iteration — previously the wall was the min while steps/joins came
    // from whichever iteration ran last, leaving rows internally
    // inconsistent whenever the minimum was not the final iteration.
    let mut resume_best: Option<(f64, u64, u64, AnalysisResult)> = None;
    for _ in 0..iters.max(1) {
        let mut session = AnalysisSession::builder(&bench.program)
            .config(config.clone())
            .roots(bench.roots.iter().copied())
            .build()
            .expect("benchmark roots are valid");
        session.solve();
        let joins_before = session.snapshot().stats().state_joins;
        let start = Instant::now();
        session.add_roots(extra.iter().copied()).expect("extra roots are valid");
        session.solve();
        let wall = start.elapsed().as_secs_f64() * 1e3;
        let steps = session.last_solve_steps();
        let joins = session.snapshot().stats().state_joins - joins_before;
        if resume_best.as_ref().is_none_or(|(w, ..)| wall < *w) {
            resume_best = Some((wall, steps, joins, session.into_result()));
        }
    }
    let (resume_wall, resume_steps, resume_joins, resumed_result) =
        resume_best.expect("at least one incremental run");

    assert_eq!(
        fresh_result.reachable_methods(),
        resumed_result.reachable_methods(),
        "resume diverged from the fresh union fixpoint"
    );
    let fresh_dead = dead_block_total(&fresh_result);
    let resumed_dead = dead_block_total(&resumed_result);
    assert_eq!(fresh_dead, resumed_dead, "resume dead-block totals diverged");

    let scheduler = scheduler_label(&config).to_string();
    let record = |label: &str, result: &AnalysisResult, wall_ms, steps, joins| {
        let sched = &result.stats().scheduler;
        RunRecord {
            config: label.to_string(),
            solver: solver_label(config.solver()),
            scheduler: scheduler.clone(),
            narrow_join: effective_narrow_join(&config),
            flips: sched.flips,
            wall_ms,
            steps,
            full_join_steps: result.stats().full_join_steps,
            state_joins: joins,
            flows: result.stats().flows,
            use_edges: result.stats().use_edges,
            order_repairs: sched.order_repairs,
            scc_merges: sched.scc_merges,
            antichain_rounds: sched.antichain_rounds,
            antichain_batched_buckets: sched.antichain_batched_buckets,
            dirty_round_skips: sched.antichain_dirty_round_skips,
            reachable_methods: result.reachable_methods().len(),
            dead_blocks: dead_block_total(result),
        }
    };
    let fresh_stats = fresh_result.stats().clone();
    (
        record(
            "SkipFlow",
            &fresh_result,
            fresh_wall,
            fresh_stats.steps,
            fresh_stats.state_joins,
        ),
        record(
            "SkipFlow-resume",
            &resumed_result,
            resume_wall,
            resume_steps,
            resume_joins,
        ),
    )
}

/// Runs the resume rungs (fresh union vs incremental re-solve per spec).
/// `force_fifo` mirrors the ladder/fan-out pre-change capture mode: the
/// sequential solver runs the FIFO scheduler in both phases.
pub fn run_resume(force_fifo: bool) -> Vec<WorkloadRecord> {
    let config = if force_fifo {
        AnalysisConfig::skipflow()
            .with_scheduler(SchedulerKind::Fifo)
            .with_narrow_join_width(0)
    } else {
        AnalysisConfig::skipflow()
    };
    resume_specs()
        .iter()
        .map(|spec| {
            let bench = build_benchmark(spec);
            let extra =
                skipflow_synth::pick_spread_roots(&bench.program, &bench.roots, RESUME_EXTRA_ROOTS);
            let (fresh, incremental) = measure_resume(&bench, &extra, &config, 3);
            WorkloadRecord {
                name: spec.name.clone(),
                kind: "resume",
                generated_methods: bench.total_methods(),
                runs: vec![fresh, incremental],
                adaptive_fifo_wall_ratio: None,
                delta_reference_wall_ratio: None,
                interrupt_overhead_wall_ratio: None,
            }
        })
        .collect()
}

/// One measured serve workload (one scheduler over the serve rung).
#[derive(Clone, Debug)]
pub struct ServeRecord {
    /// Workload name (`serve-2000`).
    pub name: String,
    /// Scheduler label (`adaptive` / `scc` / `fifo`).
    pub scheduler: String,
    /// Roots accepted across the coalescing phase.
    pub roots_queued: u64,
    /// Writer batches those roots were coalesced into.
    pub batches: u64,
    /// `roots_queued / batches` — > 1 means the writer coalesced queued
    /// registrations into shared solves.
    pub coalescing_ratio: f64,
    /// Epochs published across all three phases.
    pub epochs_published: u64,
    /// Of those, interrupted (partial) checkpoints — 0 with no batch budget.
    pub partial_epochs: u64,
    /// Snapshot queries answered by the reader threads during the in-flight
    /// solve of the throughput phase.
    pub queries_total: u64,
    /// Those queries per second — served lock-free from the last published
    /// epoch while the writer solved.
    pub queries_per_sec_during_solve: f64,
    /// Median roots-accepted → settled-epoch-visible wall time over the
    /// latency phase's single-root batches.
    pub publication_latency_ms: f64,
}

/// The serve rung: ladder shape at moderate size, so one batch solve is
/// long enough to overlap queries with but short enough to repeat.
fn serve_spec() -> BenchmarkSpec {
    BenchmarkSpec::new("serve-2000", Suite::DaCapo, 2000, 0.2).with_fanout(8)
}

/// Measures the analysis-server workload for one scheduler, entirely
/// in-process (no TCP): phase 1 registers roots one at a time while the
/// writer is mid-solve and reads the coalescing counters; phase 2 hammers
/// the published snapshot from reader threads for the duration of a full
/// batch solve; phase 3 times single-root batch → settled-epoch publication.
fn measure_serve(scheduler: SchedulerKind) -> ServeRecord {
    use skipflow_core::CallGraphQuery as _;
    use skipflow_server::{Registry, ServerConfig};
    use skipflow_modelcheck::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
    use skipflow_modelcheck::sync::Arc;
    use std::time::Duration;

    let bench = build_benchmark(&serve_spec());
    let config = AnalysisConfig::skipflow()
        .with_scheduler(scheduler)
        .with_reflective_roots(bench.reflective_roots.iter().copied());
    let program = Arc::new(bench.program);
    let mut spread =
        skipflow_synth::pick_spread_roots(&program, &bench.roots, 48).into_iter();
    let registry = Registry::new(ServerConfig::default());
    let flush = |name: &str| {
        registry
            .flush(name, Duration::from_secs(120))
            .expect("serve bench flush")
    };

    // Phase 1 — coalescing: the first root keeps the writer busy while the
    // rest are registered one request at a time; the writer drains them in
    // far fewer batches than requests.
    let h = registry.open("coalesce", program.clone(), config.clone()).expect("open");
    registry.add_roots("coalesce", bench.roots.clone()).expect("roots");
    let mut queued = bench.roots.len() as u64;
    for root in spread.by_ref().take(32) {
        registry.add_roots("coalesce", vec![root]).expect("roots");
        queued += 1;
    }
    flush("coalesce");
    let batches = h.batches().max(1);
    let coalescing_ratio = queued as f64 / batches as f64;
    let mut epochs_published = h.epochs_published();
    let mut partial_epochs = h.partial_epochs();
    registry.evict("coalesce").expect("evict");

    // Phase 2 — sustained query throughput during an in-flight solve: the
    // readers only count queries answered between the roots being accepted
    // and the flush returning, i.e. while the writer is actually solving.
    let h = registry.open("qps", program.clone(), config.clone()).expect("open");
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let h = h.clone();
            let stop = stop.clone();
            let served = served.clone();
            std::thread::spawn(move || {
                while !stop.load(Relaxed) {
                    let ep = h.published();
                    std::hint::black_box(ep.snapshot.reachable_count());
                    served.fetch_add(1, Relaxed);
                }
            })
        })
        .collect();
    let start = Instant::now();
    registry.add_roots("qps", bench.roots.clone()).expect("roots");
    flush("qps");
    let solve_secs = start.elapsed().as_secs_f64();
    stop.store(true, Relaxed);
    for r in readers {
        r.join().expect("reader");
    }
    let queries_total = served.load(Relaxed);
    let queries_per_sec_during_solve = queries_total as f64 / solve_secs.max(1e-9);
    epochs_published += h.epochs_published();
    partial_epochs += h.partial_epochs();
    registry.evict("qps").expect("evict");

    // Phase 3 — publication latency: sequential single-root batches against
    // an already-saturated session; each flush waits for the settled epoch,
    // so the wall time is accept → publish. Median over the batches.
    let _ = registry.open("latency", program.clone(), config.clone()).expect("open");
    registry.add_roots("latency", bench.roots.clone()).expect("roots");
    flush("latency");
    let mut latencies: Vec<f64> = spread
        .take(8)
        .map(|root| {
            let start = Instant::now();
            registry.add_roots("latency", vec![root]).expect("roots");
            flush("latency");
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let publication_latency_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies[latencies.len() / 2]
    };
    let h = registry.get("latency").expect("latency session");
    epochs_published += h.epochs_published();
    partial_epochs += h.partial_epochs();
    registry.shutdown_all();

    ServeRecord {
        name: serve_spec().name,
        scheduler: match scheduler {
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::SccPriority => "scc",
            SchedulerKind::Adaptive => "adaptive",
        }
        .to_string(),
        roots_queued: queued,
        batches,
        coalescing_ratio,
        epochs_published,
        partial_epochs,
        queries_total,
        queries_per_sec_during_solve,
        publication_latency_ms,
    }
}

/// Runs the serve family under all three schedulers.
pub fn run_serve() -> Vec<ServeRecord> {
    [SchedulerKind::Adaptive, SchedulerKind::SccPriority, SchedulerKind::Fifo]
        .into_iter()
        .map(measure_serve)
        .collect()
}

/// One measured edit-script workload: a seeded non-monotone operation
/// stream (root adds/retracts, body disables/restores, interleaved solve
/// points) driven through a single session, with the invalidation volume
/// and the re-derive-vs-fresh step comparison of the *final* fixpoint.
#[derive(Clone, Debug)]
pub struct EditRecord {
    /// Workload name (`edit-rung-2000`).
    pub name: String,
    /// Concrete methods the generator emitted.
    pub generated_methods: usize,
    /// Mutation operations in the script (solve points not counted).
    pub script_steps: usize,
    /// Solve points in the script (≥ 2: the initial solve and the final).
    pub solve_points: usize,
    /// Solved-in roots the script retracted (pending removals not counted).
    pub retractions: u64,
    /// Method-body edits the script applied (disables + restores).
    pub edits: u64,
    /// Methods whose PVPG fragments the taint closures deactivated — the
    /// cumulative over-delete region of the DRed-style invalidation.
    pub invalidated_methods: u64,
    /// Flows reset to bottom by those invalidations.
    pub invalidated_flows: u64,
    /// Worklist steps spent re-deriving after invalidations, summed over
    /// the script.
    pub rederive_steps: u64,
    /// Worklist steps of one fresh solve of the script's final
    /// configuration (surviving roots under the final mask).
    pub fresh_steps: u64,
    /// `rederive_steps / fresh_steps` — how much re-derivation the whole
    /// non-monotone stream cost relative to solving its end state once.
    pub rederive_fresh_ratio: f64,
    /// Wall-clock time for the whole script (every solve point included).
    pub wall_ms: f64,
}

/// The edit rungs (one ladder-shaped, one fan-out-shaped, the same sizes
/// as the resume rungs) with their script seeds.
pub fn edit_specs() -> Vec<(BenchmarkSpec, u64)> {
    vec![
        (
            BenchmarkSpec::new("edit-rung-2000", Suite::DaCapo, 2000, 0.2).with_fanout(8),
            0xED17_0001,
        ),
        (
            BenchmarkSpec::new("edit-fanout-200", Suite::DaCapo, 60, 0.0)
                .with_shared_sink(200, 128),
            0xED17_0002,
        ),
    ]
}

/// Mutation operations per edit script.
pub const EDIT_SCRIPT_STEPS: usize = 24;

/// Roots moved per add/retract batch of an edit script.
pub const EDIT_SCRIPT_CHURN: usize = 4;

/// Drives the seeded edit script over `bench` through one session and
/// measures it (see [`EditRecord`]). Panics if the session's final
/// fixpoint diverges from a fresh solve of the script's final
/// configuration on the precision guards — the bit-level identity is
/// enforced by `tests/edit_scripts.rs`, but a perf document must never be
/// produced from diverging runs.
pub fn measure_edits(
    name: &str,
    bench: &Benchmark,
    seed: u64,
    steps: usize,
    churn: usize,
    config: &AnalysisConfig,
) -> EditRecord {
    use skipflow_core::MethodEdit;
    use skipflow_synth::{build_edit_script, EditOp};

    let config = config
        .clone()
        .with_reflective_roots(bench.reflective_roots.iter().copied());
    let script = build_edit_script(bench, seed, steps, churn);
    let script_steps = script.ops.iter().filter(|op| !matches!(op, EditOp::Solve)).count();
    let solve_points = script.ops.len() - script_steps;

    let start = Instant::now();
    let mut session = AnalysisSession::builder(&bench.program)
        .config(config.clone())
        .roots(bench.roots.iter().copied())
        .build()
        .expect("benchmark roots are valid");
    for op in &script.ops {
        match op {
            EditOp::AddRoots(batch) => {
                session.add_roots(batch.iter().copied()).expect("script adds are valid");
            }
            EditOp::RetractRoots(batch) => {
                session
                    .retract_roots(batch.iter().copied())
                    .expect("script retracts current roots");
            }
            EditOp::DisableMethod(m) => {
                session
                    .apply_edit(*m, MethodEdit::DisableBody)
                    .expect("script disables concrete methods");
            }
            EditOp::RestoreMethod(m) => {
                session
                    .apply_edit(*m, MethodEdit::RestoreBody)
                    .expect("script restores masked methods");
            }
            EditOp::Solve => {
                session.solve();
            }
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let inv = session.snapshot().stats().invalidation;
    let result = session.into_result();

    // The fresh oracle of the script's end state: surviving roots under the
    // final mask, never having seen the intermediate configurations.
    let oracle_config = config
        .clone()
        .with_masked_methods(script.final_masked.iter().copied());
    let fresh = analyze(&bench.program, &script.final_roots, &oracle_config);
    assert_eq!(
        result.reachable_methods(),
        fresh.reachable_methods(),
        "edit workload {name}: session diverged from the fresh final fixpoint"
    );
    assert_eq!(
        dead_block_total(&result),
        dead_block_total(&fresh),
        "edit workload {name}: dead-block totals diverged"
    );
    let fresh_steps = fresh.stats().steps;

    EditRecord {
        name: name.to_string(),
        generated_methods: bench.total_methods(),
        script_steps,
        solve_points,
        retractions: inv.retractions,
        edits: inv.edits,
        invalidated_methods: inv.invalidated_methods,
        invalidated_flows: inv.invalidated_flows,
        rederive_steps: inv.rederive_steps,
        fresh_steps,
        rederive_fresh_ratio: inv.rederive_steps as f64 / fresh_steps.max(1) as f64,
        wall_ms,
    }
}

/// Runs the edit rungs under the default (adaptive) configuration.
pub fn run_edits() -> Vec<EditRecord> {
    edit_specs()
        .iter()
        .map(|(spec, seed)| {
            let bench = build_benchmark(spec);
            measure_edits(
                &spec.name,
                &bench,
                *seed,
                EDIT_SCRIPT_STEPS,
                EDIT_SCRIPT_CHURN,
                &AnalysisConfig::skipflow(),
            )
        })
        .collect()
}

fn dead_block_total(result: &AnalysisResult) -> usize {
    result
        .reachable_methods()
        .iter()
        .map(|&m| result.dead_blocks(m).len())
        .sum()
}

fn solver_label(kind: SolverKind) -> String {
    match kind {
        SolverKind::Sequential => "sequential".to_string(),
        SolverKind::Parallel { threads } => format!("parallel-{threads}"),
        SolverKind::Reference => "reference".to_string(),
    }
}

/// The narrow-join width a run actually executes with: the engine forces
/// the fast path *off* for the Reference solver (it must stay the
/// byte-for-byte full-join oracle), so its rows record 0 regardless of the
/// configured width — a consumer filtering `narrow_join > 0` sees only
/// rows the fast path could have touched.
fn effective_narrow_join(config: &AnalysisConfig) -> usize {
    match config.solver() {
        SolverKind::Reference => 0,
        _ => config.narrow_join_width(),
    }
}

fn scheduler_label(config: &AnalysisConfig) -> &'static str {
    match (config.solver(), config.scheduler()) {
        (SolverKind::Reference, _) | (_, SchedulerKind::Fifo) => "fifo",
        (_, SchedulerKind::SccPriority) => "scc",
        (_, SchedulerKind::Adaptive) => "adaptive",
    }
}

/// Measures one benchmark under one configuration: one untimed warm-up run
/// (page faults, allocator growth), then the best of `iters` timed runs.
/// The analysis is deterministic, so only wall time varies between runs.
pub fn measure_run(bench: &Benchmark, config: &AnalysisConfig, iters: usize) -> RunRecord {
    measure_group(bench, std::slice::from_ref(config), iters)
        .pop()
        .expect("one config, one record")
}

/// Measures several configurations over the same benchmark with the timed
/// iterations *interleaved* round-robin (warm-ups first), so heap warm-up
/// and machine drift hit every configuration equally instead of biasing
/// whichever happens to run first. Records the best iteration per config.
pub fn measure_group(
    bench: &Benchmark,
    configs: &[AnalysisConfig],
    iters: usize,
) -> Vec<RunRecord> {
    let configs: Vec<AnalysisConfig> = configs
        .iter()
        .map(|c| {
            c.clone()
                .with_reflective_roots(bench.reflective_roots.iter().copied())
        })
        .collect();
    for config in &configs {
        let _warmup = analyze(&bench.program, &bench.roots, config);
    }
    let mut walls = vec![f64::INFINITY; configs.len()];
    let mut results: Vec<Option<AnalysisResult>> = vec![None; configs.len()];
    for _ in 0..iters.max(1) {
        for (i, config) in configs.iter().enumerate() {
            let start = Instant::now();
            let r = analyze(&bench.program, &bench.roots, config);
            walls[i] = walls[i].min(start.elapsed().as_secs_f64() * 1e3);
            results[i] = Some(r);
        }
    }
    configs
        .iter()
        .zip(walls)
        .zip(results)
        .map(|((config, wall_ms), result)| {
            let result = result.expect("at least one timed run");
            let stats = result.stats();
            RunRecord {
                config: config.label().to_string(),
                solver: solver_label(config.solver()),
                scheduler: scheduler_label(config).to_string(),
                narrow_join: effective_narrow_join(config),
                flips: stats.scheduler.flips,
                wall_ms,
                steps: stats.steps,
                full_join_steps: stats.full_join_steps,
                state_joins: stats.state_joins,
                flows: stats.flows,
                use_edges: stats.use_edges,
                order_repairs: stats.scheduler.order_repairs,
                scc_merges: stats.scheduler.scc_merges,
                antichain_rounds: stats.scheduler.antichain_rounds,
                antichain_batched_buckets: stats.scheduler.antichain_batched_buckets,
                dirty_round_skips: stats.scheduler.antichain_dirty_round_skips,
                reachable_methods: result.reachable_methods().len(),
                dead_blocks: dead_block_total(&result),
            }
        })
        .collect()
}

/// The configuration set measured per ladder/fanout workload. With
/// `force_fifo` every delta solver runs the PR 3 behaviour — FIFO worklist
/// and no narrow-join fast path — that is the pre-change capture mode
/// (`--scheduler fifo`); otherwise the adaptive-default configs are
/// measured with forced-FIFO, forced-SCC, and narrow-join-disabled
/// sequential runs alongside, so one document carries the scheduler
/// comparison *and* the fast-path ablation.
fn scaling_configs(force_fifo: bool) -> Vec<AnalysisConfig> {
    if force_fifo {
        vec![
            AnalysisConfig::skipflow()
                .with_scheduler(SchedulerKind::Fifo)
                .with_narrow_join_width(0),
            AnalysisConfig::skipflow()
                .with_solver(SolverKind::Parallel { threads: 4 })
                .with_scheduler(SchedulerKind::Fifo)
                .with_narrow_join_width(0),
            AnalysisConfig::skipflow().with_solver(SolverKind::Reference),
            AnalysisConfig::baseline_pta()
                .with_scheduler(SchedulerKind::Fifo)
                .with_narrow_join_width(0),
        ]
    } else {
        vec![
            // The primary row: adaptive scheduler + narrow-join fast path.
            AnalysisConfig::skipflow(),
            // Forced schedulers for the in-document comparison.
            AnalysisConfig::skipflow().with_scheduler(SchedulerKind::Fifo),
            AnalysisConfig::skipflow().with_scheduler(SchedulerKind::SccPriority),
            // Ablation row: adaptive scheduling without the narrow-join
            // fast path (isolates the two tentpole mechanisms).
            AnalysisConfig::skipflow().with_narrow_join_width(0),
            AnalysisConfig::skipflow().with_solver(SolverKind::Parallel { threads: 4 }),
            AnalysisConfig::skipflow().with_solver(SolverKind::Reference),
            AnalysisConfig::baseline_pta(),
        ]
    }
}

/// Median per-pair wall-time ratio of `a` to `b` from a *paired*
/// measurement: the two configurations run back-to-back within each pair
/// (order swapped every pair), each pair yields one `a/b` ratio, and the
/// median over all pairs is taken. Pairing cancels drift slower than a
/// pair (thermal windows, noisy neighbours); the median discards pairs a
/// noise burst split down the middle. This is what the ±2 %
/// adaptive-vs-FIFO ladder guard is judged on — independently measured
/// best-of rows swing far more than the band on a shared machine.
pub fn measure_paired_wall_ratio(
    bench: &Benchmark,
    a: &AnalysisConfig,
    b: &AnalysisConfig,
    pairs: usize,
) -> f64 {
    let prep = |c: &AnalysisConfig| {
        c.clone()
            .with_reflective_roots(bench.reflective_roots.iter().copied())
    };
    let (a, b) = (prep(a), prep(b));
    for c in [&a, &b] {
        let _warmup = analyze(&bench.program, &bench.roots, c);
    }
    let timed = |c: &AnalysisConfig| {
        let start = Instant::now();
        let _ = analyze(&bench.program, &bench.roots, c);
        start.elapsed().as_secs_f64() * 1e3
    };
    let mut ratios: Vec<f64> = (0..pairs.max(1))
        .map(|i| {
            if i % 2 == 0 {
                let wall_a = timed(&a);
                let wall_b = timed(&b);
                wall_a / wall_b
            } else {
                let wall_b = timed(&b);
                let wall_a = timed(&a);
                wall_a / wall_b
            }
        })
        .collect();
    ratios.sort_by(|x, y| x.total_cmp(y));
    let n = ratios.len();
    if n % 2 == 1 {
        ratios[n / 2]
    } else {
        (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0
    }
}

/// Median per-pair wall-time ratio of an *armed* interruptible solve to an
/// unarmed one, by the same paired protocol as
/// [`measure_paired_wall_ratio`]: both sides build a fresh session over the
/// benchmark roots and drive it with `solve_interruptible`, but side A
/// passes a cancel token that never trips (arming the per-step interrupt
/// guard) while side B passes `None` (the guard stays a single `Option`
/// test per step). The ratio therefore isolates exactly the cost of the
/// strided cancel/budget polling the PR 6 acceptance bound (≤ 1 % wall on
/// the largest ladder rung) is about.
pub fn measure_paired_interrupt_overhead(
    bench: &Benchmark,
    config: &AnalysisConfig,
    pairs: usize,
) -> f64 {
    let config = config
        .clone()
        .with_reflective_roots(bench.reflective_roots.iter().copied());
    let token = CancelToken::new();
    let timed = |cancel: Option<&CancelToken>| {
        let mut session = AnalysisSession::builder(&bench.program)
            .config(config.clone())
            .roots(bench.roots.iter().copied())
            .build()
            .expect("benchmark roots are valid");
        let start = Instant::now();
        let outcome = session
            .solve_interruptible(cancel)
            .expect("no capacity error on a benchmark corpus");
        let wall = start.elapsed().as_secs_f64() * 1e3;
        assert!(
            !outcome.is_interrupted(),
            "a never-tripped token must not interrupt"
        );
        wall
    };
    // Warm-ups, one per side.
    let _ = timed(Some(&token));
    let _ = timed(None);
    let mut ratios: Vec<f64> = (0..pairs.max(1))
        .map(|i| {
            if i % 2 == 0 {
                let armed = timed(Some(&token));
                let unarmed = timed(None);
                armed / unarmed
            } else {
                let unarmed = timed(None);
                let armed = timed(Some(&token));
                armed / unarmed
            }
        })
        .collect();
    ratios.sort_by(|x, y| x.total_cmp(y));
    let n = ratios.len();
    if n % 2 == 1 {
        ratios[n / 2]
    } else {
        (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0
    }
}

fn run_scaling_family(
    specs: &[BenchmarkSpec],
    kind: &'static str,
    force_fifo: bool,
    paired: bool,
) -> Vec<WorkloadRecord> {
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let bench = build_benchmark(spec);
            // 9 interleaved timed iterations (up from 5): the adaptive
            // scheduler's ladder guard compares wall times at a ±2 % band,
            // which a best-of-5 on a shared machine cannot resolve.
            let runs = measure_group(&bench, &scaling_configs(force_fifo), 9);
            // Both wall-time guards come from drift-cancelling paired
            // measurements (default captures only; skipped for CI step-gate
            // runs, which never read the ratios): adaptive-vs-FIFO on
            // every ladder rung, delta-vs-Reference on the largest.
            let paired = paired && kind == "ladder" && !force_fifo;
            let adaptive_fifo_wall_ratio = paired.then(|| {
                measure_paired_wall_ratio(
                    &bench,
                    &AnalysisConfig::skipflow(),
                    &AnalysisConfig::skipflow().with_scheduler(SchedulerKind::Fifo),
                    48,
                )
            });
            let delta_reference_wall_ratio = (paired && i + 1 == specs.len()).then(|| {
                measure_paired_wall_ratio(
                    &bench,
                    &AnalysisConfig::skipflow(),
                    &AnalysisConfig::skipflow().with_solver(SolverKind::Reference),
                    48,
                )
            });
            // The PR 6 cancel-check overhead guard: armed vs unarmed
            // interruptible solve on the largest ladder rung only.
            let interrupt_overhead_wall_ratio = (paired && i + 1 == specs.len()).then(|| {
                measure_paired_interrupt_overhead(&bench, &AnalysisConfig::skipflow(), 48)
            });
            WorkloadRecord {
                name: spec.name.clone(),
                kind,
                generated_methods: bench.total_methods(),
                runs,
                adaptive_fifo_wall_ratio,
                delta_reference_wall_ratio,
                interrupt_overhead_wall_ratio,
            }
        })
        .collect()
}

/// Runs the ladder: each rung under SkipFlow (sequential under all three
/// schedulers plus the narrow-join ablation, parallel-4, and the reference
/// full-join solver) plus the PTA baseline. With `paired`, the
/// wall-time-guard ratios are also measured (expensive; committed captures
/// only — CI's step gate passes `false`).
pub fn run_ladder(force_fifo: bool, paired: bool) -> Vec<WorkloadRecord> {
    run_scaling_family(&ladder_specs(), "ladder", force_fifo, paired)
}

/// Runs the fan-out rungs under the same configuration set as the ladder.
pub fn run_fanout(force_fifo: bool) -> Vec<WorkloadRecord> {
    run_scaling_family(&fanout_specs(), "fanout", force_fifo, false)
}

/// Runs the full table1 corpus under PTA and SkipFlow (sequential).
pub fn run_table1() -> Vec<WorkloadRecord> {
    skipflow_synth::suites::all()
        .iter()
        .map(|spec| {
            let bench = build_benchmark(spec);
            let runs = vec![
                measure_run(&bench, &AnalysisConfig::baseline_pta(), 1),
                measure_run(&bench, &AnalysisConfig::skipflow(), 1),
            ];
            WorkloadRecord {
                name: spec.name.clone(),
                kind: "table1",
                generated_methods: bench.total_methods(),
                runs,
                adaptive_fifo_wall_ratio: None,
                delta_reference_wall_ratio: None,
                interrupt_overhead_wall_ratio: None,
            }
        })
        .collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a tri-state guard outcome: `null` when the guard never compared
/// anything (it must not read as a pass).
fn json_opt_bool(v: Option<bool>) -> &'static str {
    match v {
        Some(true) => "true",
        Some(false) => "false",
        None => "null",
    }
}

/// Extracts a numeric field from the *first* `SkipFlow`/`sequential` run
/// line of `workload` in a previously written trajectory document
/// (line-oriented parse of this module's own format — no JSON dependency
/// available offline). In a default capture the first sequential row is the
/// SCC scheduler; in a `--scheduler fifo` (pre-change) capture it is FIFO —
/// so "first match" always denotes the document's primary configuration.
fn parse_baseline_field(doc: &str, workload: &str, field: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{workload}\"");
    let mut in_workload = false;
    for line in doc.lines() {
        if line.contains(&needle) {
            in_workload = true;
        }
        if in_workload && line.contains("\"config\": \"SkipFlow\", \"solver\": \"sequential\"") {
            let key = format!("\"{field}\": ");
            let i = line.find(&key)? + key.len();
            let rest = &line[i..];
            let end = rest.find([',', '}'])?;
            return rest[..end].trim().parse().ok();
        }
    }
    None
}

/// The `SkipFlow`/`sequential` wall time of `workload` from a baseline
/// document (see `parse_baseline_field` for which row is picked).
pub fn parse_baseline_wall_ms(doc: &str, workload: &str) -> Option<f64> {
    parse_baseline_field(doc, workload, "wall_ms")
}

/// The `SkipFlow`/`sequential` worklist step count of `workload` from a
/// baseline document. Steps are deterministic per corpus, so they make a
/// machine-independent CI regression gate.
pub fn parse_baseline_steps(doc: &str, workload: &str) -> Option<u64> {
    parse_baseline_field(doc, workload, "steps").map(|v| v as u64)
}

/// The workload names of every ladder/fanout record in a baseline document.
pub fn parse_baseline_workloads(doc: &str) -> Vec<String> {
    let mut names = Vec::new();
    for line in doc.lines() {
        if let Some(i) = line.find("\"name\": \"") {
            let rest = &line[i + 9..];
            if let Some(end) = rest.find('"') {
                let name = &rest[..end];
                if name.starts_with("rung-")
                    || name.starts_with("fanout-")
                    || name.starts_with("resume-")
                {
                    names.push(name.to_string());
                }
            }
        }
    }
    names
}

/// Renders the records as the `BENCH_PR<n>.json` document. `baseline` is a
/// previously captured pre-change document of the same harness, used for the
/// headline wall-time comparison on the largest ladder rung.
pub fn render_json(pr: &str, workloads: &[WorkloadRecord], baseline: Option<&str>) -> String {
    render_json_document(pr, workloads, &[], &[], baseline)
}

/// [`render_json`] plus the serve-family block, kept for callers that
/// predate the edit family.
pub fn render_json_with_serve(
    pr: &str,
    workloads: &[WorkloadRecord],
    serve: &[ServeRecord],
    baseline: Option<&str>,
) -> String {
    render_json_document(pr, workloads, serve, &[], baseline)
}

/// The full document: scaling workloads plus the serve and edit families.
/// Serve and edit records have their own schemas (no `SkipFlow`/
/// `sequential` step rows), so they render as separate `"serve"` /
/// `"edits"` arrays the step-gate parser — which only recognises `rung-` /
/// `fanout-` / `resume-` names — never sees.
pub fn render_json_document(
    pr: &str,
    workloads: &[WorkloadRecord],
    serve: &[ServeRecord],
    edits: &[EditRecord],
    baseline: Option<&str>,
) -> String {
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"skipflow-bench-trajectory/v5\",");
    let _ = writeln!(out, "  \"pr\": \"{}\",", json_escape(pr));
    let _ = writeln!(out, "  \"created_unix\": {unix},");
    let _ = writeln!(out, "  \"host_threads\": {threads},");
    let _ = writeln!(out, "  \"workloads\": [");
    for (wi, w) in workloads.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", json_escape(&w.name));
        let _ = writeln!(out, "      \"kind\": \"{}\",", w.kind);
        let _ = writeln!(out, "      \"generated_methods\": {},", w.generated_methods);
        let _ = writeln!(out, "      \"runs\": [");
        for (ri, r) in w.runs.iter().enumerate() {
            let comma = if ri + 1 < w.runs.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "        {{\"config\": \"{}\", \"solver\": \"{}\", \"scheduler\": \"{}\", \
                 \"narrow_join\": {}, \"flips\": {}, \"wall_ms\": {:.3}, \
                 \"steps\": {}, \"full_join_steps\": {}, \"state_joins\": {}, \"flows\": {}, \
                 \"use_edges\": {}, \
                 \"order_repairs\": {}, \"scc_merges\": {}, \"antichain_rounds\": {}, \
                 \"antichain_batched_buckets\": {}, \"dirty_round_skips\": {}, \
                 \"reachable_methods\": {}, \"dead_blocks\": {}}}{comma}",
                json_escape(&r.config),
                json_escape(&r.solver),
                json_escape(&r.scheduler),
                r.narrow_join,
                r.flips,
                r.wall_ms,
                r.steps,
                r.full_join_steps,
                r.state_joins,
                r.flows,
                r.use_edges,
                r.order_repairs,
                r.scc_merges,
                r.antichain_rounds,
                r.antichain_batched_buckets,
                r.dirty_round_skips,
                r.reachable_methods,
                r.dead_blocks,
            );
        }
        let _ = writeln!(out, "      ]");
        let comma = if wi + 1 < workloads.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ],");
    if !serve.is_empty() {
        let _ = writeln!(out, "  \"serve\": [");
        for (si, s) in serve.iter().enumerate() {
            let comma = if si + 1 < serve.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"scheduler\": \"{}\", \"roots_queued\": {}, \
                 \"batches\": {}, \"coalescing_ratio\": {:.3}, \"epochs_published\": {}, \
                 \"partial_epochs\": {}, \"queries_total\": {}, \
                 \"queries_per_sec_during_solve\": {:.1}, \
                 \"publication_latency_ms\": {:.3}}}{comma}",
                json_escape(&s.name),
                json_escape(&s.scheduler),
                s.roots_queued,
                s.batches,
                s.coalescing_ratio,
                s.epochs_published,
                s.partial_epochs,
                s.queries_total,
                s.queries_per_sec_during_solve,
                s.publication_latency_ms,
            );
        }
        let _ = writeln!(out, "  ],");
    }
    if !edits.is_empty() {
        let _ = writeln!(out, "  \"edits\": [");
        for (ei, e) in edits.iter().enumerate() {
            let comma = if ei + 1 < edits.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"generated_methods\": {}, \"script_steps\": {}, \
                 \"solve_points\": {}, \"retractions\": {}, \"edits\": {}, \
                 \"invalidated_methods\": {}, \"invalidated_flows\": {}, \
                 \"rederive_steps\": {}, \"fresh_steps\": {}, \
                 \"rederive_fresh_ratio\": {:.4}, \"wall_ms\": {:.3}}}{comma}",
                json_escape(&e.name),
                e.generated_methods,
                e.script_steps,
                e.solve_points,
                e.retractions,
                e.edits,
                e.invalidated_methods,
                e.invalidated_flows,
                e.rederive_steps,
                e.fresh_steps,
                e.rederive_fresh_ratio,
                e.wall_ms,
            );
        }
        let _ = writeln!(out, "  ],");
    }
    out.push_str(&render_summary_json(workloads, baseline));
    let _ = writeln!(out, "}}");
    out
}

/// The headline summary object: wall-time and step-count reductions on the
/// largest ladder and fanout rungs versus (a) a pre-change baseline run of
/// the same harness, (b) the in-file FIFO-scheduled sequential run, and
/// (c) the in-tree full-join reference solver, with precision-identity
/// guards across every solver/scheduler measured.
fn render_summary_json(workloads: &[WorkloadRecord], baseline: Option<&str>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "  \"summary\": {{");
    // Precision identity across *all* runs of every scaling workload: the
    // schedulers and solvers must agree on reachable methods and dead
    // blocks everywhere, not just on the headline rung. `None` (rendered
    // as JSON null) means the guard never compared anything — a guard that
    // did not run must not read as a guard that passed.
    let mut identical: Option<bool> = None;
    for w in workloads.iter().filter(|w| w.kind != "table1") {
        if let Some(first) = w.runs.iter().find(|r| r.config == "SkipFlow") {
            for r in w.runs.iter().filter(|r| r.config == "SkipFlow") {
                if std::ptr::eq(r, first) {
                    continue;
                }
                let same = r.reachable_methods == first.reachable_methods
                    && r.dead_blocks == first.dead_blocks;
                identical = Some(identical.unwrap_or(true) && same);
            }
        }
    }
    let _ = writeln!(
        out,
        "    \"results_identical_across_solvers\": {},",
        json_opt_bool(identical)
    );
    // The legacy seq-vs-reference guard: the primary sequential run and the
    // full-join reference must agree per scaling workload (a strict subset
    // of the across-solvers check above, kept under its historical key).
    let mut identical_ref: Option<bool> = None;
    for w in workloads.iter().filter(|w| w.kind != "table1") {
        let seq = w
            .runs
            .iter()
            .find(|r| r.config == "SkipFlow" && r.solver == "sequential");
        let reference = w
            .runs
            .iter()
            .find(|r| r.config == "SkipFlow" && r.solver == "reference");
        if let (Some(seq), Some(reference)) = (seq, reference) {
            let same = seq.reachable_methods == reference.reachable_methods
                && seq.dead_blocks == reference.dead_blocks;
            identical_ref = Some(identical_ref.unwrap_or(true) && same);
        }
    }
    for kind in ["ladder", "fanout"] {
        let largest = workloads
            .iter()
            .filter(|w| w.kind == kind)
            .max_by_key(|w| w.generated_methods);
        let Some(w) = largest else {
            let _ = writeln!(out, "    \"largest_{kind}_rung\": null,");
            continue;
        };
        let seq = w
            .runs
            .iter()
            .find(|r| r.config == "SkipFlow" && r.solver == "sequential");
        let fifo = w
            .runs
            .iter()
            .find(|r| r.config == "SkipFlow" && r.solver == "sequential" && r.scheduler == "fifo");
        let reference = w
            .runs
            .iter()
            .find(|r| r.config == "SkipFlow" && r.solver == "reference");
        let _ = writeln!(
            out,
            "    \"largest_{kind}_rung\": \"{}\",",
            json_escape(&w.name)
        );
        let Some(seq) = seq else { continue };
        if let Some(doc) = baseline {
            if let Some(pre) = parse_baseline_wall_ms(doc, &w.name) {
                let reduction = 1.0 - seq.wall_ms / pre;
                let _ = writeln!(
                    out,
                    "    \"largest_{kind}_rung_wall_ms_pre_change\": {pre:.3},"
                );
                let _ = writeln!(
                    out,
                    "    \"largest_{kind}_rung_wall_reduction_vs_pre_change\": {reduction:.4},"
                );
            }
            if let Some(pre_steps) = parse_baseline_steps(doc, &w.name) {
                let reduction = 1.0 - seq.steps as f64 / pre_steps as f64;
                let _ = writeln!(
                    out,
                    "    \"largest_{kind}_rung_steps_pre_change\": {pre_steps},"
                );
                let _ = writeln!(
                    out,
                    "    \"largest_{kind}_rung_step_reduction_vs_pre_change\": {reduction:.4},"
                );
            }
        }
        if let Some(fifo) = fifo {
            if !std::ptr::eq(seq, fifo) {
                let wall_red = 1.0 - seq.wall_ms / fifo.wall_ms;
                let step_red = 1.0 - seq.steps as f64 / fifo.steps as f64;
                let _ = writeln!(
                    out,
                    "    \"largest_{kind}_rung_wall_reduction_vs_fifo\": {wall_red:.4},"
                );
                let _ = writeln!(
                    out,
                    "    \"largest_{kind}_rung_step_reduction_vs_fifo\": {step_red:.4},"
                );
            }
        }
        if let Some(reference) = reference {
            let reduction = 1.0 - seq.wall_ms / reference.wall_ms;
            let _ = writeln!(
                out,
                "    \"largest_{kind}_rung_wall_ms\": {{\"delta\": {:.3}, \"reference\": {:.3}}},",
                seq.wall_ms, reference.wall_ms
            );
            let _ = writeln!(
                out,
                "    \"largest_{kind}_rung_wall_reduction_vs_reference\": {reduction:.4},"
            );
        }
    }
    // Adaptive-scheduler guards (PR 4). On the ladder — acyclic, no
    // re-processing — the adaptive scheduler must cost the same wall time
    // as forced FIFO (the SCC overhead is gone); on the fan-out rungs it
    // must actually flip so the SCC step win is retained. The ±2 % band is
    // judged on the drift-cancelling *paired* measurement
    // ([`measure_paired_wall_ratio`]); the independently measured rows are
    // kept alongside but swing more than the band on a shared machine.
    let mut adaptive_ladder_ok: Option<bool> = None;
    for w in workloads.iter().filter(|w| w.kind == "ladder") {
        let Some(ratio) = w.adaptive_fifo_wall_ratio else { continue };
        let _ = writeln!(
            out,
            "    \"ladder_{}_adaptive_wall_vs_fifo\": {ratio:.4},",
            json_escape(&w.name.replace('-', "_"))
        );
        adaptive_ladder_ok =
            Some(adaptive_ladder_ok.unwrap_or(true) && (ratio - 1.0).abs() <= 0.02);
    }
    let _ = writeln!(
        out,
        "    \"adaptive_within_2pct_of_fifo_on_ladder\": {},",
        json_opt_bool(adaptive_ladder_ok)
    );
    let mut adaptive_flipped: Option<bool> = None;
    for w in workloads.iter().filter(|w| w.kind == "fanout") {
        let adaptive = w.runs.iter().find(|r| {
            r.config == "SkipFlow" && r.solver == "sequential" && r.scheduler == "adaptive"
        });
        let Some(adaptive) = adaptive else { continue };
        let _ = writeln!(
            out,
            "    \"fanout_{}_flips\": {},",
            json_escape(&w.name.replace('-', "_")),
            adaptive.flips
        );
        adaptive_flipped = Some(adaptive_flipped.unwrap_or(true) && adaptive.flips >= 1);
    }
    let _ = writeln!(
        out,
        "    \"adaptive_flipped_on_fanout\": {},",
        json_opt_bool(adaptive_flipped)
    );
    // Antichain guard (PR 5): with the condensation maintained online, the
    // parallel solver's fan-out rounds must never degrade to singleton
    // buckets — zero dirty-round skips (the counter is structurally dead)
    // and strictly more buckets drained than rounds taken on every fan-out
    // rung's parallel run.
    let mut antichain_ok: Option<bool> = None;
    for w in workloads.iter().filter(|w| w.kind == "fanout") {
        let par = w.runs.iter().find(|r| {
            r.config == "SkipFlow" && r.solver.starts_with("parallel")
        });
        let Some(par) = par else { continue };
        let _ = writeln!(
            out,
            "    \"fanout_{}_parallel_antichain\": {{\"rounds\": {}, \"batched_buckets\": {}, \
             \"dirty_round_skips\": {}}},",
            json_escape(&w.name.replace('-', "_")),
            par.antichain_rounds,
            par.antichain_batched_buckets,
            par.dirty_round_skips,
        );
        let ok = par.dirty_round_skips == 0
            && par.antichain_rounds > 0
            && par.antichain_batched_buckets > par.antichain_rounds;
        antichain_ok = Some(antichain_ok.unwrap_or(true) && ok);
    }
    let _ = writeln!(
        out,
        "    \"fanout_parallel_antichain_batched\": {},",
        json_opt_bool(antichain_ok)
    );
    // Narrow-join fast-path guard: on the largest ladder rung the primary
    // delta run (narrow-join enabled) must not be slower than the full-join
    // reference loop — the regression BENCH_PR2 documented is gone. Judged
    // on the paired measurement like the adaptive band above.
    let narrow_vs_reference = workloads
        .iter()
        .filter(|w| w.kind == "ladder")
        .max_by_key(|w| w.generated_methods)
        .and_then(|w| {
            let ratio = w.delta_reference_wall_ratio?;
            let _ = writeln!(
                out,
                "    \"largest_ladder_rung_narrow_join_vs_reference_wall\": {ratio:.4},"
            );
            Some(ratio <= 1.0)
        });
    let _ = writeln!(
        out,
        "    \"narrow_join_delta_not_slower_than_reference\": {},",
        json_opt_bool(narrow_vs_reference)
    );
    // Interrupt-machinery guard (PR 6): arming the per-step interrupt
    // guard with a never-tripped cancel token must cost at most 1 % wall
    // time on the largest ladder rung — the strided poll is the only
    // difference between the two sides of the paired measurement.
    let interrupt_overhead_ok = workloads
        .iter()
        .filter(|w| w.kind == "ladder")
        .max_by_key(|w| w.generated_methods)
        .and_then(|w| {
            let ratio = w.interrupt_overhead_wall_ratio?;
            let _ = writeln!(
                out,
                "    \"largest_ladder_rung_interrupt_check_overhead_wall\": {ratio:.4},"
            );
            Some(ratio <= 1.01)
        });
    let _ = writeln!(
        out,
        "    \"cancel_check_overhead_within_1pct\": {},",
        json_opt_bool(interrupt_overhead_ok)
    );
    // Resume rungs: the incremental re-solve must reach the same fixpoint
    // with fewer steps than the fresh union run it extends. Tri-state like
    // the other guards: null when no resume workload was measured.
    let mut resume_fewer: Option<bool> = None;
    let mut resume_identical: Option<bool> = None;
    for w in workloads.iter().filter(|w| w.kind == "resume") {
        let fresh = w.runs.iter().find(|r| r.config == "SkipFlow");
        let inc = w.runs.iter().find(|r| r.config == "SkipFlow-resume");
        let (Some(fresh), Some(inc)) = (fresh, inc) else { continue };
        resume_fewer = Some(resume_fewer.unwrap_or(true) && inc.steps < fresh.steps);
        let same = inc.reachable_methods == fresh.reachable_methods
            && inc.dead_blocks == fresh.dead_blocks;
        resume_identical = Some(resume_identical.unwrap_or(true) && same);
        let ratio = inc.steps as f64 / fresh.steps.max(1) as f64;
        let _ = writeln!(
            out,
            "    \"resume_{}\": {{\"steps_fresh\": {}, \"steps_incremental\": {}, \
             \"step_ratio\": {:.4}, \"wall_ms_fresh\": {:.3}, \"wall_ms_incremental\": {:.3}}},",
            json_escape(&w.name.replace('-', "_")),
            fresh.steps,
            inc.steps,
            ratio,
            fresh.wall_ms,
            inc.wall_ms,
        );
    }
    let _ = writeln!(
        out,
        "    \"resume_incremental_fewer_steps\": {},",
        json_opt_bool(resume_fewer)
    );
    let _ = writeln!(
        out,
        "    \"resume_results_identical\": {},",
        json_opt_bool(resume_identical)
    );
    let _ = writeln!(
        out,
        "    \"results_identical_to_reference\": {}",
        json_opt_bool(identical_ref)
    );
    let _ = writeln!(out, "  }}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipflow_core::AnalysisConfig;

    fn tiny_workload() -> WorkloadRecord {
        let spec = BenchmarkSpec::new("rung-tiny", Suite::DaCapo, 60, 0.2);
        let bench = build_benchmark(&spec);
        WorkloadRecord {
            name: spec.name.clone(),
            kind: "ladder",
            generated_methods: bench.total_methods(),
            adaptive_fifo_wall_ratio: Some(measure_paired_wall_ratio(
                &bench,
                &AnalysisConfig::skipflow(),
                &AnalysisConfig::skipflow().with_scheduler(SchedulerKind::Fifo),
                2,
            )),
            delta_reference_wall_ratio: Some(1.0),
            interrupt_overhead_wall_ratio: Some(measure_paired_interrupt_overhead(
                &bench,
                &AnalysisConfig::skipflow(),
                2,
            )),
            runs: vec![
                measure_run(&bench, &AnalysisConfig::skipflow(), 1),
                measure_run(
                    &bench,
                    &AnalysisConfig::skipflow().with_scheduler(SchedulerKind::Fifo),
                    1,
                ),
                measure_run(
                    &bench,
                    &AnalysisConfig::skipflow().with_solver(SolverKind::Reference),
                    1,
                ),
            ],
        }
    }

    #[test]
    fn measure_run_records_precision_and_volume() {
        let w = tiny_workload();
        let seq = &w.runs[0];
        let fifo = &w.runs[1];
        let reference = &w.runs[2];
        assert_eq!(
            (seq.solver.as_str(), seq.scheduler.as_str()),
            ("sequential", "adaptive")
        );
        assert!(seq.narrow_join > 0, "primary row runs the fast path");
        assert_eq!((fifo.solver.as_str(), fifo.scheduler.as_str()), ("sequential", "fifo"));
        assert_eq!(
            (reference.solver.as_str(), reference.scheduler.as_str()),
            ("reference", "fifo")
        );
        assert!(seq.steps > 0 && seq.state_joins > 0 && seq.flows > 0);
        // The precision guards must agree between solvers and schedulers.
        for r in [fifo, reference] {
            assert_eq!(seq.reachable_methods, r.reachable_methods);
            assert_eq!(seq.dead_blocks, r.dead_blocks);
        }
    }

    #[test]
    fn rendered_json_roundtrips_through_the_baseline_parser() {
        let w = tiny_workload();
        let wall = w.runs[0].wall_ms;
        let steps = w.runs[0].steps;
        let doc = render_json("test", &[w], None);
        assert!(doc.contains("\"schema\": \"skipflow-bench-trajectory/v5\""));
        assert!(doc.contains("\"ladder_rung_tiny_adaptive_wall_vs_fifo\""));
        assert!(doc.contains("\"largest_ladder_rung\": \"rung-tiny\""));
        // The PR 6 overhead guard renders its measured ratio and verdict…
        assert!(doc.contains("\"largest_ladder_rung_interrupt_check_overhead_wall\""), "{doc}");
        assert!(!doc.contains("\"cancel_check_overhead_within_1pct\": null"), "{doc}");
        assert!(doc.contains("\"results_identical_to_reference\": true"));
        assert!(doc.contains("\"results_identical_across_solvers\": true"));
        assert!(doc.contains("largest_ladder_rung_step_reduction_vs_fifo"));
        let parsed = parse_baseline_wall_ms(&doc, "rung-tiny").expect("parses back");
        assert!((parsed - wall).abs() < 0.01, "{parsed} vs {wall}");
        // The first sequential row is the document's primary configuration
        // (SCC in a default capture), and steps parse exactly.
        assert_eq!(parse_baseline_steps(&doc, "rung-tiny"), Some(steps));
        assert_eq!(parse_baseline_workloads(&doc), vec!["rung-tiny".to_string()]);
        // A second run fed the first as baseline records the comparison.
        let w2 = tiny_workload();
        let doc2 = render_json("test2", &[w2], Some(&doc));
        assert!(doc2.contains("largest_ladder_rung_wall_reduction_vs_pre_change"));
        assert!(doc2.contains("largest_ladder_rung_step_reduction_vs_pre_change"));
    }

    #[test]
    fn resume_measurement_records_fewer_incremental_steps() {
        let spec = BenchmarkSpec::new("resume-tiny", Suite::DaCapo, 80, 0.2);
        let bench = build_benchmark(&spec);
        let extra = skipflow_synth::pick_spread_roots(&bench.program, &bench.roots, 6);
        assert!(!extra.is_empty());
        let (fresh, inc) = measure_resume(&bench, &extra, &AnalysisConfig::skipflow(), 1);
        assert_eq!(fresh.config, "SkipFlow");
        assert_eq!(inc.config, "SkipFlow-resume");
        assert_eq!(
            (fresh.solver.as_str(), fresh.scheduler.as_str()),
            ("sequential", "adaptive")
        );
        // The pre-change capture mode carries through to the resume records.
        let fifo_cfg = AnalysisConfig::skipflow().with_scheduler(SchedulerKind::Fifo);
        let (fresh_fifo, inc_fifo) = measure_resume(&bench, &extra, &fifo_cfg, 1);
        assert_eq!(fresh_fifo.scheduler, "fifo");
        assert_eq!(inc_fifo.scheduler, "fifo");
        assert_eq!(fresh_fifo.reachable_methods, fresh.reachable_methods);
        assert!(
            inc.steps < fresh.steps,
            "incremental {} vs fresh {}",
            inc.steps,
            fresh.steps
        );
        assert_eq!(fresh.reachable_methods, inc.reachable_methods);
        assert_eq!(fresh.dead_blocks, inc.dead_blocks);
        let w = WorkloadRecord {
            name: spec.name.clone(),
            kind: "resume",
            generated_methods: bench.total_methods(),
            runs: vec![fresh, inc],
            adaptive_fifo_wall_ratio: None,
            delta_reference_wall_ratio: None,
            interrupt_overhead_wall_ratio: None,
        };
        let doc = render_json("test", &[w], None);
        assert!(doc.contains("\"resume_incremental_fewer_steps\": true"), "{doc}");
        // …and renders as an unjudged (null) guard when never measured.
        assert!(doc.contains("\"cancel_check_overhead_within_1pct\": null"), "{doc}");
        assert!(doc.contains("\"resume_results_identical\": true"), "{doc}");
        assert!(doc.contains("\"resume_resume_tiny\""), "{doc}");
        // The step gate covers resume rungs through their fresh-union row.
        assert_eq!(parse_baseline_workloads(&doc), vec!["resume-tiny".to_string()]);
        assert!(parse_baseline_steps(&doc, "resume-tiny").is_some());
    }

    #[test]
    fn serve_block_renders_and_stays_invisible_to_the_step_gate() {
        let w = tiny_workload();
        let serve = ServeRecord {
            name: "serve-2000".to_string(),
            scheduler: "adaptive".to_string(),
            roots_queued: 40,
            batches: 5,
            coalescing_ratio: 8.0,
            epochs_published: 12,
            partial_epochs: 0,
            queries_total: 90_000,
            queries_per_sec_during_solve: 1.2e6,
            publication_latency_ms: 3.25,
        };
        let doc = render_json_with_serve("test", &[w], &[serve], None);
        assert!(doc.contains("\"serve\": ["), "{doc}");
        assert!(doc.contains("\"coalescing_ratio\": 8.000"), "{doc}");
        assert!(doc.contains("\"queries_per_sec_during_solve\": 1200000.0"), "{doc}");
        // The step gate's workload scan must not pick the serve record up.
        assert_eq!(parse_baseline_workloads(&doc), vec!["rung-tiny".to_string()]);
        // An empty serve family renders no block at all (pre-change capture
        // mode), and the two entry points agree on everything else.
        let w2 = tiny_workload();
        let doc2 = render_json("test", &[w2], None);
        assert!(!doc2.contains("\"serve\": ["));
    }

    #[test]
    fn edit_block_renders_and_stays_invisible_to_the_step_gate() {
        let spec = BenchmarkSpec::new("edit-tiny", Suite::DaCapo, 60, 0.2);
        let bench = build_benchmark(&spec);
        let rec = measure_edits("edit-tiny", &bench, 7, 12, 2, &AnalysisConfig::skipflow());
        // The seeded script must actually exercise the non-monotone paths
        // (the generator's op mix makes a mutation-free 12-step script
        // impossible), and the measurement must have solved something.
        assert!(rec.script_steps > 0 && rec.solve_points >= 2);
        assert!(rec.retractions + rec.edits > 0, "script never invalidated: {rec:?}");
        assert!(rec.invalidated_flows > 0, "{rec:?}");
        assert!(rec.fresh_steps > 0);
        assert!(rec.rederive_fresh_ratio > 0.0);

        let w = tiny_workload();
        let doc = render_json_document("test", &[w], &[], &[rec], None);
        assert!(doc.contains("\"edits\": ["), "{doc}");
        assert!(doc.contains("\"rederive_fresh_ratio\""), "{doc}");
        // The step gate's workload scan must not pick the edit record up.
        assert_eq!(parse_baseline_workloads(&doc), vec!["rung-tiny".to_string()]);
        // An empty edit family renders no block at all (pre-change capture
        // mode, like serve).
        let w2 = tiny_workload();
        let doc2 = render_json_document("test", &[w2], &[], &[], None);
        assert!(!doc2.contains("\"edits\": ["));
    }

    #[test]
    fn ladder_specs_double_and_name_consistently() {
        let specs = ladder_specs();
        assert!(specs.len() >= 4);
        for pair in specs.windows(2) {
            assert_eq!(pair[1].total_methods, pair[0].total_methods * 2);
        }
        assert!(specs.iter().all(|s| s.name.starts_with("rung-")));
    }

    #[test]
    fn fanout_specs_double_readers_and_writers() {
        let specs = fanout_specs();
        assert!(specs.len() >= 3);
        for pair in specs.windows(2) {
            assert_eq!(
                pair[1].shared_sink_readers,
                pair[0].shared_sink_readers * 2
            );
            assert_eq!(
                pair[1].shared_sink_writers,
                pair[0].shared_sink_writers * 2
            );
        }
        assert!(specs.iter().all(|s| s.name.starts_with("fanout-")));
    }
}
