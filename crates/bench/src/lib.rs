//! # skipflow-bench
//!
//! The evaluation harness: regenerates the paper's **Table 1** (all three
//! benchmark suites × {PTA, SkipFlow} × eight metrics) and **Figure 9**
//! (per-suite normalized metrics), plus ablation sweeps.
//!
//! Binaries:
//!
//! * `cargo run -p skipflow-bench --bin table1 -- --suite all`
//! * `cargo run -p skipflow-bench --bin fig9`
//! * `cargo run --release -p skipflow-bench --bin trajectory` — the perf
//!   trajectory record (`BENCH_PR<n>.json`; see [`trajectory`])
//!
//! Criterion benches (`cargo bench -p skipflow-bench`) measure analysis
//! time for both configurations, the ablations, and the lattice/graph
//! micro-operations.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod trajectory;

use skipflow_core::{analyze, AnalysisConfig, Metrics};
use skipflow_synth::{build_benchmark, Benchmark, BenchmarkSpec};
use std::fmt::Write as _;
use std::time::Instant;

/// Simulated compile cost per surviving instruction, standing in for the
/// Native Image compilation phase that follows the analysis (the paper's
/// *Total Time*). The constant is chosen so compilation dominates analysis
/// by roughly the paper's observed factor.
pub const COMPILE_US_PER_INSTRUCTION: f64 = 4.0;

/// One measured cell block of Table 1: a benchmark under one configuration.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Suite name.
    pub suite: &'static str,
    /// Configuration label (`PTA` / `SkipFlow` / ablations).
    pub config: String,
    /// Wall-clock analysis time in milliseconds.
    pub analysis_ms: f64,
    /// Analysis plus simulated compilation, milliseconds.
    pub total_ms: f64,
    /// The counter metrics.
    pub metrics: Metrics,
}

impl Row {
    /// Reachable-method count (convenience accessor).
    pub fn reachable(&self) -> usize {
        self.metrics.reachable_methods
    }
}

/// Runs one benchmark under one configuration and collects a [`Row`].
pub fn measure(bench: &Benchmark, config: &AnalysisConfig) -> Row {
    let config = config
        .clone()
        .with_reflective_roots(bench.reflective_roots.iter().copied());
    let start = Instant::now();
    let result = analyze(&bench.program, &bench.roots, &config);
    let analysis_ms = start.elapsed().as_secs_f64() * 1e3;
    let metrics = result.metrics(&bench.program);
    let compile_ms = metrics.live_instructions as f64 * COMPILE_US_PER_INSTRUCTION / 1e3;
    Row {
        benchmark: bench.spec.name.clone(),
        suite: bench.spec.suite.name(),
        config: config.label().to_string(),
        analysis_ms,
        total_ms: analysis_ms + compile_ms,
        metrics,
    }
}

/// Runs a full suite under both Table 1 configurations; returns
/// `(PTA row, SkipFlow row)` per benchmark.
pub fn run_suite(specs: &[BenchmarkSpec]) -> Vec<(Row, Row)> {
    specs
        .iter()
        .map(|spec| {
            let bench = build_benchmark(spec);
            let pta = measure(&bench, &AnalysisConfig::baseline_pta());
            let skf = measure(&bench, &AnalysisConfig::skipflow());
            (pta, skf)
        })
        .collect()
}

fn delta(pta: f64, skf: f64) -> String {
    if pta == 0.0 {
        return "    -".to_string();
    }
    let d = (skf - pta) / pta * 100.0;
    format!("{d:+6.1}%")
}

fn fmt_k(v: usize) -> String {
    if v >= 10_000 {
        format!("{:.1}k", v as f64 / 1000.0)
    } else {
        v.to_string()
    }
}

/// Renders Table 1 for a set of measured benchmark pairs.
pub fn render_table1(pairs: &[(Row, Row)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<26} {:<9} {:>11} {:>11} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "Benchmark",
        "Config",
        "Analysis",
        "Total",
        "Methods",
        "TypeChk",
        "NullChk",
        "PrimChk",
        "PolyCall",
        "Size[KB]"
    );
    let _ = writeln!(out, "{}", "-".repeat(120));
    for (pta, skf) in pairs {
        let m = &pta.metrics;
        let _ = writeln!(
            out,
            "{:<26} {:<9} {:>9.1}ms {:>9.1}ms {:>9} {:>9} {:>9} {:>9} {:>9} {:>10.1}",
            pta.benchmark,
            pta.config,
            pta.analysis_ms,
            pta.total_ms,
            fmt_k(m.reachable_methods),
            fmt_k(m.type_checks),
            fmt_k(m.null_checks),
            fmt_k(m.prim_checks),
            fmt_k(m.poly_calls),
            m.binary_size_bytes as f64 / 1024.0,
        );
        let s = &skf.metrics;
        let _ = writeln!(
            out,
            "{:<26} {:<9} {:>9.1}ms {:>9.1}ms {:>9} {:>9} {:>9} {:>9} {:>9} {:>10.1}",
            "",
            skf.config,
            skf.analysis_ms,
            skf.total_ms,
            fmt_k(s.reachable_methods),
            fmt_k(s.type_checks),
            fmt_k(s.null_checks),
            fmt_k(s.prim_checks),
            fmt_k(s.poly_calls),
            s.binary_size_bytes as f64 / 1024.0,
        );
        let _ = writeln!(
            out,
            "{:<26} {:<9} {:>11} {:>11} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
            "",
            "  Δ",
            delta(pta.analysis_ms, skf.analysis_ms),
            delta(pta.total_ms, skf.total_ms),
            delta(m.reachable_methods as f64, s.reachable_methods as f64),
            delta(m.type_checks as f64, s.type_checks as f64),
            delta(m.null_checks as f64, s.null_checks as f64),
            delta(m.prim_checks as f64, s.prim_checks as f64),
            delta(m.poly_calls as f64, s.poly_calls as f64),
            delta(
                m.binary_size_bytes as f64,
                s.binary_size_bytes as f64
            ),
        );
    }
    out.push_str(&render_summary(pairs));
    out
}

/// Renders the per-suite averages quoted in the paper's abstract and §6.
pub fn render_summary(pairs: &[(Row, Row)]) -> String {
    if pairs.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let n = pairs.len() as f64;
    let avg = |f: &dyn Fn(&(Row, Row)) -> f64| pairs.iter().map(f).sum::<f64>() / n;
    let red = |pta: f64, skf: f64| (1.0 - skf / pta) * 100.0;
    let methods = avg(&|(p, s)| {
        red(
            p.metrics.reachable_methods as f64,
            s.metrics.reachable_methods as f64,
        )
    });
    let max_red = pairs
        .iter()
        .map(|(p, s)| {
            red(
                p.metrics.reachable_methods as f64,
                s.metrics.reachable_methods as f64,
            )
        })
        .fold(f64::MIN, f64::max);
    let min_red = pairs
        .iter()
        .map(|(p, s)| {
            red(
                p.metrics.reachable_methods as f64,
                s.metrics.reachable_methods as f64,
            )
        })
        .fold(f64::MAX, f64::min);
    // Changes use the Δ-row convention: negative = improvement.
    let change = |pta: f64, skf: f64| (skf / pta - 1.0) * 100.0;
    let analysis = avg(&|(p, s)| change(p.analysis_ms, s.analysis_ms));
    let total = avg(&|(p, s)| change(p.total_ms, s.total_ms));
    let size = avg(&|(p, s)| {
        change(
            p.metrics.binary_size_bytes as f64,
            s.metrics.binary_size_bytes as f64,
        )
    });
    let _ = writeln!(out, "{}", "-".repeat(120));
    let _ = writeln!(
        out,
        "Reachable methods reduced by max {max_red:.1}%, min {min_red:.1}%, avg {methods:.1}%; \
         analysis time {analysis:+.1}%, total time {total:+.1}%, binary size {size:+.1}% (avg)."
    );
    out
}

/// The honest binary-size experiment: shrink each benchmark under both
/// configurations (dropping unreachable methods, stubbing dead code) and
/// compare the *encoded* `SFBC` byte sizes — real bytes instead of the
/// instruction-count proxy of Table 1.
pub fn render_real_sizes(specs: &[BenchmarkSpec]) -> String {
    use skipflow_core::shrink::{encoded_sizes, shrink};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<26} {:>12} {:>12} {:>14} {:>8}",
        "Benchmark", "Original[B]", "PTA[B]", "SkipFlow[B]", "Δ"
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    for spec in specs {
        let bench = build_benchmark(spec);
        let pta = analyze(&bench.program, &bench.roots, &AnalysisConfig::baseline_pta());
        let skf = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());
        let p = shrink(&bench.program, &pta).expect("PTA shrink validates");
        let s = shrink(&bench.program, &skf).expect("SkipFlow shrink validates");
        let (original, pta_bytes) = encoded_sizes(&bench.program, &p);
        let (_, skf_bytes) = encoded_sizes(&bench.program, &s);
        let _ = writeln!(
            out,
            "{:<26} {:>12} {:>12} {:>14} {:>7.1}%",
            spec.name,
            original,
            pta_bytes,
            skf_bytes,
            (skf_bytes as f64 / pta_bytes as f64 - 1.0) * 100.0
        );
    }
    out
}

/// Renders measured pairs as CSV (one line per configuration run) for
/// external plotting.
pub fn render_csv(pairs: &[(Row, Row)]) -> String {
    let mut out = String::from(
        "suite,benchmark,config,analysis_ms,total_ms,reachable_methods,\
         type_checks,null_checks,prim_checks,poly_calls,live_instructions,binary_size_bytes\n",
    );
    for (pta, skf) in pairs {
        for row in [pta, skf] {
            let m = &row.metrics;
            let _ = writeln!(
                out,
                "{},{},{},{:.3},{:.3},{},{},{},{},{},{},{}",
                row.suite,
                row.benchmark,
                row.config,
                row.analysis_ms,
                row.total_ms,
                m.reachable_methods,
                m.type_checks,
                m.null_checks,
                m.prim_checks,
                m.poly_calls,
                m.live_instructions,
                m.binary_size_bytes
            );
        }
    }
    out
}

/// The metric series of Figure 9, normalized to the PTA baseline
/// (values < 1.0 are improvements).
#[derive(Clone, Debug)]
pub struct NormalizedRow {
    /// Benchmark name.
    pub benchmark: String,
    /// `[analysis, total, methods, type, null, prim, poly, size]`, each
    /// SkipFlow / PTA.
    pub series: [f64; 8],
}

/// The metric labels of [`NormalizedRow::series`].
pub const FIG9_METRICS: [&str; 8] = [
    "Analysis Time",
    "Total Time",
    "Reach. Methods",
    "Type Checks",
    "Null Checks",
    "Prim Checks",
    "Poly Calls",
    "Binary Size",
];

/// Normalizes measured pairs into Figure 9 series.
pub fn normalize(pairs: &[(Row, Row)]) -> Vec<NormalizedRow> {
    pairs
        .iter()
        .map(|(p, s)| {
            let r = |a: f64, b: f64| if a == 0.0 { 1.0 } else { b / a };
            NormalizedRow {
                benchmark: p.benchmark.clone(),
                series: [
                    r(p.analysis_ms, s.analysis_ms),
                    r(p.total_ms, s.total_ms),
                    r(
                        p.metrics.reachable_methods as f64,
                        s.metrics.reachable_methods as f64,
                    ),
                    r(p.metrics.type_checks as f64, s.metrics.type_checks as f64),
                    r(p.metrics.null_checks as f64, s.metrics.null_checks as f64),
                    r(p.metrics.prim_checks as f64, s.metrics.prim_checks as f64),
                    r(p.metrics.poly_calls as f64, s.metrics.poly_calls as f64),
                    r(
                        p.metrics.binary_size_bytes as f64,
                        s.metrics.binary_size_bytes as f64,
                    ),
                ],
            }
        })
        .collect()
}

/// Renders one Figure 9 panel (a suite) as a table plus ASCII bars for the
/// reachable-methods series.
pub fn render_fig9(suite: &str, rows: &[NormalizedRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 9 — {suite} (SkipFlow / PTA; < 1.0 is an improvement)");
    let _ = write!(out, "{:<26}", "Benchmark");
    for m in FIG9_METRICS {
        let _ = write!(out, " {:>14}", m);
    }
    out.push('\n');
    let _ = writeln!(out, "{}", "-".repeat(26 + 15 * FIG9_METRICS.len()));
    for row in rows {
        let _ = write!(out, "{:<26}", row.benchmark);
        for v in row.series {
            let _ = write!(out, " {v:>14.3}");
        }
        out.push('\n');
    }
    // ASCII bars for the headline metric.
    let _ = writeln!(out, "\nReach. Methods (normalized):");
    for row in rows {
        let v = row.series[2];
        let width = (v * 50.0).round().clamp(0.0, 60.0) as usize;
        let _ = writeln!(out, "{:<26} {:5.3} |{}", row.benchmark, v, "#".repeat(width));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipflow_synth::suites;

    #[test]
    fn measure_produces_consistent_rows() {
        let spec = suites::by_name("lusearch").unwrap();
        let bench = build_benchmark(&spec);
        let pta = measure(&bench, &AnalysisConfig::baseline_pta());
        let skf = measure(&bench, &AnalysisConfig::skipflow());
        assert_eq!(pta.config, "PTA");
        assert_eq!(skf.config, "SkipFlow");
        assert!(skf.reachable() < pta.reachable());
        assert!(skf.total_ms > skf.analysis_ms);
    }

    #[test]
    fn table_renders_all_columns() {
        let pairs = run_suite(&suites::quick()[..1]);
        let table = render_table1(&pairs);
        for col in ["Methods", "TypeChk", "PolyCall", "Size[KB]", "avg"] {
            assert!(table.contains(col), "missing {col} in:\n{table}");
        }
    }

    #[test]
    fn normalization_is_one_for_identical_rows() {
        let spec = suites::by_name("lusearch").unwrap();
        let bench = build_benchmark(&spec);
        let row = measure(&bench, &AnalysisConfig::baseline_pta());
        let rows = normalize(&[(row.clone(), row)]);
        for (i, v) in rows[0].series.iter().enumerate() {
            if i >= 2 {
                // Time columns wobble; metric columns must be exactly 1.
                assert!((v - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn fig9_renders_every_benchmark() {
        let pairs = run_suite(&suites::quick()[..2]);
        let rows = normalize(&pairs);
        let text = render_fig9("smoke", &rows);
        assert!(text.contains("lusearch"));
        assert!(text.contains("Reach. Methods"));
    }

    #[test]
    fn csv_has_one_line_per_config_run() {
        let pairs = run_suite(&suites::quick()[..1]);
        let csv = render_csv(&pairs);
        assert_eq!(csv.lines().count(), 3, "header + PTA + SkipFlow:\n{csv}");
        assert!(csv.contains(",PTA,"));
        assert!(csv.contains(",SkipFlow,"));
    }

    #[test]
    fn real_sizes_shrink_under_skipflow() {
        let specs = [suites::by_name("sunflow").unwrap()];
        let table = render_real_sizes(&specs);
        assert!(table.contains("sunflow"), "{table}");
        // The sunflow row must show a large negative delta.
        let line = table.lines().find(|l| l.starts_with("sunflow")).unwrap();
        let delta: f64 = line
            .split_whitespace()
            .last()
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(delta < -30.0, "expected a big reduction, got {delta}%");
    }
}
