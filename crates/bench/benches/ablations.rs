//! Ablation benches for the design choices called out in `DESIGN.md`:
//!
//! * predicate edges vs primitive tracking, separately and together;
//! * declared-type parameter filtering on/off;
//! * saturation on/off;
//! * sequential vs deterministic-parallel solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skipflow_core::{analyze, AnalysisConfig, SolverKind};
use skipflow_synth::{build_benchmark, suites};

fn bench_feature_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_features");
    group.sample_size(15);
    let spec = suites::by_name("sunflow").expect("sunflow spec");
    let bench = build_benchmark(&spec);
    let configs = [
        ("PTA", AnalysisConfig::baseline_pta()),
        ("predicates-only", AnalysisConfig::predicates_only()),
        ("primitives-only", AnalysisConfig::primitives_only()),
        ("SkipFlow", AnalysisConfig::skipflow()),
    ];
    for (name, config) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| analyze(&bench.program, &bench.roots, config))
        });
    }
    group.finish();
}

fn bench_declared_type_filtering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_declared_type_filtering");
    group.sample_size(15);
    let spec = suites::by_name("xalan").expect("xalan spec");
    let bench = build_benchmark(&spec);
    for on in [true, false] {
        let config = AnalysisConfig::skipflow().with_declared_type_filtering(on);
        group.bench_with_input(
            BenchmarkId::from_parameter(if on { "on" } else { "off" }),
            &config,
            |b, config| b.iter(|| analyze(&bench.program, &bench.roots, config)),
        );
    }
    group.finish();
}

fn bench_saturation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_saturation");
    group.sample_size(15);
    let spec = suites::by_name("chi-square").expect("chi-square spec");
    let bench = build_benchmark(&spec);
    for threshold in [None, Some(8), Some(32)] {
        let config = AnalysisConfig::skipflow().with_saturation(threshold);
        let label = threshold.map_or("off".to_string(), |t| t.to_string());
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| analyze(&bench.program, &bench.roots, config))
        });
    }
    group.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_solver");
    group.sample_size(10);
    let spec = suites::by_name("als").expect("als spec");
    let bench = build_benchmark(&spec);
    let mut configs = vec![("sequential".to_string(), AnalysisConfig::skipflow())];
    for threads in [2, 4, 8] {
        configs.push((
            format!("parallel-{threads}"),
            AnalysisConfig::skipflow().with_solver(SolverKind::Parallel { threads }),
        ));
    }
    for (name, config) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| analyze(&bench.program, &bench.roots, config))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_feature_ablation,
    bench_declared_type_filtering,
    bench_saturation,
    bench_solvers
);
criterion_main!(benches);
