//! Analysis-time comparison: PTA vs SkipFlow on representative benchmarks —
//! the paper's §6 "Impact on Analysis Time" claim (SkipFlow's extra
//! machinery is paid for by analyzing fewer methods).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skipflow_core::{analyze, AnalysisConfig};
use skipflow_synth::{build_benchmark, suites};

fn bench_analysis_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_time");
    group.sample_size(20);
    for name in ["lusearch", "sunflow", "xalan", "quarkus-tika"] {
        let spec = suites::by_name(name).expect("known benchmark");
        let bench = build_benchmark(&spec);
        group.bench_with_input(BenchmarkId::new("PTA", name), &bench, |b, bench| {
            b.iter(|| analyze(&bench.program, &bench.roots, &AnalysisConfig::baseline_pta()))
        });
        group.bench_with_input(BenchmarkId::new("SkipFlow", name), &bench, |b, bench| {
            b.iter(|| analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis_time);
criterion_main!(benches);
