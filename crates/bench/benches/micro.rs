//! Micro-benchmarks of the analysis building blocks: lattice joins, the
//! `Compare` filter, type-set operations, and end-to-end graph construction
//! for one benchmark program (generation + analysis of an empty root set).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use skipflow_core::{analyze, compare, AnalysisConfig, TypeSet, ValueState};
use skipflow_ir::{CmpOp, TypeId};
use skipflow_synth::{build_benchmark, suites};

fn big_typeset(n: usize, stride: usize) -> TypeSet {
    (0..n).map(|i| TypeId::from_index(1 + i * stride)).collect()
}

fn bench_lattice(c: &mut Criterion) {
    let mut group = c.benchmark_group("lattice");
    let a = ValueState::Types(big_typeset(256, 2));
    let b = ValueState::Types(big_typeset(256, 3));
    group.bench_function("join_typesets_256", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut x| {
                x.join(&b);
                x
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("join_constants", |bench| {
        bench.iter_batched(
            || ValueState::Const(1),
            |mut x| {
                x.join(&ValueState::Const(1));
                x
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("le_typesets_256", |bench| bench.iter(|| a.le(&b)));
    group.finish();
}

fn bench_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("compare");
    let sets = (
        ValueState::Types(big_typeset(128, 2)),
        ValueState::Types(big_typeset(128, 3)),
    );
    group.bench_function("eq_typesets_128", |b| {
        b.iter(|| compare(CmpOp::Eq, &sets.0, &sets.1))
    });
    group.bench_function("ne_null_check", |b| {
        let nullable = {
            let mut s = big_typeset(64, 2);
            s.insert(TypeId::NULL);
            ValueState::Types(s)
        };
        b.iter(|| compare(CmpOp::Ne, &nullable, &ValueState::null()))
    });
    group.bench_function("lt_constants", |b| {
        b.iter(|| compare(CmpOp::Lt, &ValueState::Const(3), &ValueState::Const(5)))
    });
    group.finish();
}

fn bench_generation_and_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    let spec = suites::by_name("lusearch").expect("spec");
    group.bench_function("generate_lusearch", |b| {
        b.iter(|| build_benchmark(&spec))
    });
    let bench = build_benchmark(&spec);
    group.bench_function("analyze_lusearch_skipflow", |b| {
        b.iter(|| analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow()))
    });
    group.finish();
}

criterion_group!(benches, bench_lattice, bench_compare, bench_generation_and_build);
criterion_main!(benches);
