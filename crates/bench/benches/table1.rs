//! Per-suite Table 1 regeneration benches: measures the end-to-end cost of
//! one benchmark-suite row (generation excluded; analysis of both
//! configurations included), one group per Table 1 block.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skipflow_core::{analyze, AnalysisConfig};
use skipflow_synth::{build_benchmark, suites, Benchmark};

fn both_configs(bench: &Benchmark) -> (usize, usize) {
    let pta = analyze(&bench.program, &bench.roots, &AnalysisConfig::baseline_pta());
    let skf = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());
    (
        pta.reachable_methods().len(),
        skf.reachable_methods().len(),
    )
}

fn bench_block(c: &mut Criterion, block: &str, specs: Vec<skipflow_synth::BenchmarkSpec>) {
    let mut group = c.benchmark_group(format!("table1_{block}"));
    group.sample_size(10);
    // One representative per block keeps the bench suite fast; the table1
    // binary covers every row.
    for spec in specs.into_iter().take(3) {
        let bench = build_benchmark(&spec);
        group.bench_with_input(
            BenchmarkId::from_parameter(&spec.name),
            &bench,
            |b, bench| b.iter(|| both_configs(bench)),
        );
    }
    group.finish();
}

fn bench_table1(c: &mut Criterion) {
    bench_block(c, "dacapo", suites::dacapo());
    bench_block(c, "microservices", suites::microservices());
    bench_block(c, "renaissance", suites::renaissance());
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
