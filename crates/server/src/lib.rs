//! # skipflow-server
//!
//! Analysis-as-a-service: a concurrent multi-session server over
//! `skipflow-core`, serving call-graph queries from the last published
//! fixpoint while solves proceed. Std-only — the TCP front end, the
//! publication scheme, and the registry are all hand-rolled on
//! `std::net` / `std::sync`.
//!
//! Three layers, each usable on its own:
//!
//! * [`publish::EpochCell`] — lock-free epoch-based snapshot publication.
//!   A writer swaps an atomic pointer per published fixpoint; readers clone
//!   the `Arc` out through epoch-pinned slots without ever taking a lock,
//!   so **queries are never blocked by an in-flight solve**.
//! * [`registry::Registry`] — many named [`AnalysisSession`]s over shared
//!   `Arc<Program>`s. One writer thread per session coalesces queued
//!   mutations (root adds, root *retractions*, method-body *edits* —
//!   [`registry::SessionOp`]) into ordered, budgeted, cancellable batch
//!   solves, publishing exactly one epoch per batch; admission control
//!   sheds on overload and evicts idle sessions LRU-first under a global
//!   memory budget. Retraction and edits make **epochs non-monotone**: a
//!   later epoch may cover fewer roots and reach fewer methods — see
//!   [`registry::PublishedEpoch`].
//! * [`net::Server`] — a line-delimited TCP protocol over the registry
//!   (`skipflow serve` is a thin CLI wrapper around it).
//!
//! [`AnalysisSession`]: skipflow_core::AnalysisSession
//!
//! ## Protocol grammar
//!
//! One request per line, one response line per request. Tokens are
//! whitespace-separated; session names must be whitespace-free. The full
//! protocol reference — responses, epoch semantics under retraction, the
//! `[partial]` tag — lives in `docs/PROTOCOL.md` at the repository root.
//!
//! ```text
//! request  := ping | shutdown | sessions
//!           | stats [<session>]
//!           | open <session> <source> [<opt>...]
//!           | roots <session> <root>...
//!           | retract <session> <root>...
//!           | edit <session> <root> disable|restore
//!           | flush <session>
//!           | cancel <session>
//!           | evict <session>
//!           | query <session> <q>
//! source   := synth:<benchmark>        (generated suite program)
//!           | <path>                   (.sf source or SFBC bytecode)
//! opt      := scheduler=fifo|scc|adaptive | steps=<n> | ms=<n>
//! root     := <Cls>.<method> | #<method-id>
//! q        := reachable <root> | reachable-count | call-edges
//!           | poly-calls | completeness | epoch
//! ```
//!
//! ## Response semantics
//!
//! Every response is a single line starting with `ok` or
//! `err <kind>: <message>`. Error kinds: `proto` (malformed request),
//! `unknown-session`, `duplicate-session`, `overloaded` (admission control
//! shed the request), `invalid-root`, `analysis` (bad source/option/root
//! spec), `failed` (the session hit an unrecoverable analysis error; its
//! last epoch stays queryable), and `timeout` (a `flush` outlived its
//! deadline).
//!
//! Responses answered from a published snapshot carry `epoch=<n>` and, when
//! that snapshot is an interrupted checkpoint rather than a fixpoint, the
//! trailing tag **`[partial]`**: every reported fact (reachable method,
//! call edge) is true of the final fixpoint, but more may appear once the
//! writer resumes — the same sound under-approximation contract as
//! [`Completeness::Partial`](skipflow_core::Completeness). A `flush`
//! settles the session (drains queued roots and budget-interrupted work)
//! and then reports a complete epoch, so `roots` → `flush` → `query` is the
//! read-your-writes sequence.
//!
//! ## Example session
//!
//! ```text
//! > open app synth:h2 scheduler=adaptive
//! < ok opened app methods=434 epoch=0
//! > roots app Main.main
//! < ok queued 1 epoch=0
//! > flush app
//! < ok flushed epoch=1 roots=1
//! > query app reachable-count
//! < ok 433 epoch=1
//! > query app completeness
//! < ok complete epoch=1
//! > evict app
//! < ok evicted
//! > shutdown
//! < ok bye
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gate;
pub mod net;
pub mod protocol;
pub mod publish;
pub mod registry;

pub use gate::{SessionGate, Settle, WriterStep};
pub use net::{handle_request, Client, Server};
pub use protocol::{parse_request, Query, Request};
pub use publish::EpochCell;
pub use registry::{
    PublishedEpoch, Registry, RegistryStats, ServerConfig, ServerError, SessionHandle, SessionOp,
    SessionStats,
};
