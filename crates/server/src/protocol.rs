//! The line-delimited request protocol: one request per line, one response
//! line per request (see the crate docs for the full grammar and response
//! semantics).

/// A parsed client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; always answered `ok pong`.
    Ping,
    /// Stop the server after responding `ok bye`.
    Shutdown,
    /// List open session names.
    Sessions,
    /// Registry-level stats, or per-session stats when a name is given.
    Stats {
        /// The session to report on (`None` = registry totals).
        session: Option<String>,
    },
    /// Open a session over a program.
    Open {
        /// Session name (no whitespace).
        session: String,
        /// `synth:<benchmark>` or a filesystem path (`.sf` source or
        /// `.sfbc` bytecode).
        source: String,
        /// `key=value` options: `scheduler=fifo|scc|adaptive`, `steps=<n>`
        /// (per-batch step budget), `ms=<n>` (per-batch wall budget).
        opts: Vec<(String, String)>,
    },
    /// Queue roots for the session's next coalesced batch.
    Roots {
        /// Target session.
        session: String,
        /// Root specs: `Cls.m` labels or `#<id>` raw method indices.
        roots: Vec<String>,
    },
    /// Queue root retractions for the session's next coalesced batch — the
    /// non-monotone inverse of [`Request::Roots`]. The following epoch may
    /// cover fewer roots and reach fewer methods than its predecessor.
    Retract {
        /// Target session.
        session: String,
        /// Root specs: `Cls.m` labels or `#<id>` raw method indices.
        roots: Vec<String>,
    },
    /// Queue a method-body edit for the session's next coalesced batch.
    Edit {
        /// Target session.
        session: String,
        /// Method spec: `Cls.m` label or `#<id>` raw method index.
        method: String,
        /// The edit to apply.
        edit: skipflow_core::MethodEdit,
    },
    /// Wait until the session has no pending work; reports the settled epoch.
    Flush {
        /// Target session.
        session: String,
    },
    /// Trip the session's cancel token (in-flight batch checkpoints).
    Cancel {
        /// Target session.
        session: String,
    },
    /// Stop and drop the session.
    Evict {
        /// Target session.
        session: String,
    },
    /// A call-graph query against the session's last published epoch.
    Query {
        /// Target session.
        session: String,
        /// The query itself.
        query: Query,
    },
}

/// A call-graph query, answered from the published snapshot without
/// touching the solver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// Whether the given method (`Cls.m` or `#<id>`) is reachable.
    Reachable(String),
    /// Number of reachable methods.
    ReachableCount,
    /// Total call edges.
    CallEdges,
    /// Virtual call sites with two or more targets.
    PolyCalls,
    /// The epoch's completeness tag.
    Completeness,
    /// The current publication epoch number.
    Epoch,
}

/// Parses one request line. Errors are human-readable fragments suitable
/// for an `err proto: ...` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_whitespace();
    let verb = words.next().ok_or_else(|| "empty request".to_string())?;
    let rest: Vec<&str> = words.collect();
    let need = |n: usize, usage: &str| -> Result<(), String> {
        if rest.len() < n {
            Err(format!("usage: {usage}"))
        } else {
            Ok(())
        }
    };
    match verb {
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "sessions" => Ok(Request::Sessions),
        "stats" => Ok(Request::Stats { session: rest.first().map(|s| s.to_string()) }),
        "open" => {
            need(2, "open <session> <path|synth:NAME> [scheduler=K] [steps=N] [ms=N]")?;
            let mut opts = Vec::new();
            for w in &rest[2..] {
                match w.split_once('=') {
                    Some((k, v)) if !k.is_empty() && !v.is_empty() => {
                        opts.push((k.to_string(), v.to_string()));
                    }
                    _ => return Err(format!("malformed option `{w}` (expected key=value)")),
                }
            }
            Ok(Request::Open {
                session: rest[0].to_string(),
                source: rest[1].to_string(),
                opts,
            })
        }
        "roots" => {
            need(2, "roots <session> <Cls.m|#id>...")?;
            Ok(Request::Roots {
                session: rest[0].to_string(),
                roots: rest[1..].iter().map(|s| s.to_string()).collect(),
            })
        }
        "retract" => {
            need(2, "retract <session> <Cls.m|#id>...")?;
            Ok(Request::Retract {
                session: rest[0].to_string(),
                roots: rest[1..].iter().map(|s| s.to_string()).collect(),
            })
        }
        "edit" => {
            need(3, "edit <session> <Cls.m|#id> <disable|restore>")?;
            let edit = match rest[2] {
                "disable" => skipflow_core::MethodEdit::DisableBody,
                "restore" => skipflow_core::MethodEdit::RestoreBody,
                other => return Err(format!("unknown edit `{other}` (disable|restore)")),
            };
            Ok(Request::Edit {
                session: rest[0].to_string(),
                method: rest[1].to_string(),
                edit,
            })
        }
        "flush" => {
            need(1, "flush <session>")?;
            Ok(Request::Flush { session: rest[0].to_string() })
        }
        "cancel" => {
            need(1, "cancel <session>")?;
            Ok(Request::Cancel { session: rest[0].to_string() })
        }
        "evict" => {
            need(1, "evict <session>")?;
            Ok(Request::Evict { session: rest[0].to_string() })
        }
        "query" => {
            need(2, "query <session> <reachable M|reachable-count|call-edges|poly-calls|completeness|epoch>")?;
            let query = match rest[1] {
                "reachable" => {
                    need(3, "query <session> reachable <Cls.m|#id>")?;
                    Query::Reachable(rest[2].to_string())
                }
                "reachable-count" => Query::ReachableCount,
                "call-edges" => Query::CallEdges,
                "poly-calls" => Query::PolyCalls,
                "completeness" => Query::Completeness,
                "epoch" => Query::Epoch,
                other => return Err(format!("unknown query `{other}`")),
            };
            Ok(Request::Query { session: rest[0].to_string(), query })
        }
        other => Err(format!("unknown request `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        assert_eq!(parse_request("ping"), Ok(Request::Ping));
        assert_eq!(parse_request("  shutdown  "), Ok(Request::Shutdown));
        assert_eq!(parse_request("sessions"), Ok(Request::Sessions));
        assert_eq!(parse_request("stats"), Ok(Request::Stats { session: None }));
        assert_eq!(
            parse_request("stats s1"),
            Ok(Request::Stats { session: Some("s1".into()) })
        );
        assert_eq!(
            parse_request("open s1 synth:dacapo-avrora scheduler=scc steps=512"),
            Ok(Request::Open {
                session: "s1".into(),
                source: "synth:dacapo-avrora".into(),
                opts: vec![
                    ("scheduler".into(), "scc".into()),
                    ("steps".into(), "512".into())
                ],
            })
        );
        assert_eq!(
            parse_request("roots s1 Main.main #7"),
            Ok(Request::Roots { session: "s1".into(), roots: vec!["Main.main".into(), "#7".into()] })
        );
        assert_eq!(
            parse_request("retract s1 Main.main #7"),
            Ok(Request::Retract {
                session: "s1".into(),
                roots: vec!["Main.main".into(), "#7".into()]
            })
        );
        assert_eq!(
            parse_request("edit s1 App.run disable"),
            Ok(Request::Edit {
                session: "s1".into(),
                method: "App.run".into(),
                edit: skipflow_core::MethodEdit::DisableBody,
            })
        );
        assert_eq!(
            parse_request("edit s1 #9 restore"),
            Ok(Request::Edit {
                session: "s1".into(),
                method: "#9".into(),
                edit: skipflow_core::MethodEdit::RestoreBody,
            })
        );
        assert_eq!(parse_request("flush s1"), Ok(Request::Flush { session: "s1".into() }));
        assert_eq!(parse_request("cancel s1"), Ok(Request::Cancel { session: "s1".into() }));
        assert_eq!(parse_request("evict s1"), Ok(Request::Evict { session: "s1".into() }));
        assert_eq!(
            parse_request("query s1 reachable App.run"),
            Ok(Request::Query { session: "s1".into(), query: Query::Reachable("App.run".into()) })
        );
        for (q, parsed) in [
            ("reachable-count", Query::ReachableCount),
            ("call-edges", Query::CallEdges),
            ("poly-calls", Query::PolyCalls),
            ("completeness", Query::Completeness),
            ("epoch", Query::Epoch),
        ] {
            assert_eq!(
                parse_request(&format!("query s1 {q}")),
                Ok(Request::Query { session: "s1".into(), query: parsed })
            );
        }
    }

    #[test]
    fn rejects_malformed_requests_with_usage_hints() {
        assert!(parse_request("").is_err());
        assert!(parse_request("bogus").unwrap_err().contains("unknown request"));
        assert!(parse_request("open s1").unwrap_err().contains("usage"));
        assert!(parse_request("open s1 x.sf badopt").unwrap_err().contains("key=value"));
        assert!(parse_request("roots s1").unwrap_err().contains("usage"));
        assert!(parse_request("retract s1").unwrap_err().contains("usage"));
        assert!(parse_request("edit s1 App.run").unwrap_err().contains("usage"));
        assert!(parse_request("edit s1 App.run delete").unwrap_err().contains("unknown edit"));
        assert!(parse_request("query s1 reachable").unwrap_err().contains("usage"));
        assert!(parse_request("query s1 nope").unwrap_err().contains("unknown query"));
    }
}
