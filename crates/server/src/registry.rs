//! The session registry: many concurrent [`AnalysisSession`]s behind one
//! admission-controlled, memory-budgeted front door.
//!
//! Each open session gets a dedicated **writer thread** that owns the
//! `AnalysisSession` (sessions borrow their `Program`, so the thread moves
//! the `Arc<Program>` in and builds the session on its own stack). Clients
//! never touch the session directly:
//!
//! * **Queries** read the last published [`PublishedEpoch`] through the
//!   lock-free [`EpochCell`] — never blocked by
//!   an in-flight solve.
//! * **Mutations** — root registrations, root *retractions*, and
//!   method-body *edits* ([`SessionOp`]) — land in a handle-level queue; the
//!   writer drains the whole queue into *one* ordered batch (request
//!   coalescing: maximal runs of same-kind root ops collapse into a single
//!   `add_roots`/`retract_roots` call), applies it, runs one budgeted,
//!   cancellable [`solve_interruptible`](AnalysisSession::solve_interruptible),
//!   then publishes a new epoch — exactly one epoch per batch. A tripped
//!   budget publishes a [`Completeness::Partial`] epoch and the writer
//!   immediately resumes with a fresh budget, so publication latency stays
//!   bounded while the fixpoint still completes.
//!
//!   Because retraction and edits are non-monotone, **epochs are not
//!   monotone either**: a later epoch may cover fewer roots and reach fewer
//!   methods than an earlier one. Each epoch is internally consistent — a
//!   `Complete` epoch is bit-identical to a fresh solve of exactly
//!   [`PublishedEpoch::roots`] under [`PublishedEpoch::masked`] — but
//!   clients comparing answers *across* epochs must key them by
//!   [`PublishedEpoch::epoch`], never assume set inclusion.
//! * **Admission control**: a session cap, a per-session queued-root shed
//!   threshold, and a global memory budget enforced by evicting idle
//!   sessions in least-recently-used order (reusing the engine's memory
//!   estimate). When nothing can be evicted the request is shed with
//!   [`ServerError::Overloaded`] instead of degrading every session.
//!
//! Because the writer drains the queue *before* solving, the session's own
//! pending-root list is empty at publish time: the completeness tag of every
//! published epoch is exact for the roots it covers, which is what lets the
//! stress test assert each `Complete` epoch bit-identical to a fresh union
//! solve of [`PublishedEpoch::roots`].

use crate::gate::{SessionGate, Settle, WriterStep};
use crate::publish::EpochCell;
use skipflow_core::{
    AnalysisConfig, AnalysisError, AnalysisSession, Completeness, InterruptReason, MethodEdit,
    OwnedSnapshot, SolveStats,
};
use skipflow_ir::{MethodId, Program};
use std::collections::HashMap;
use std::fmt;

use skipflow_modelcheck::sync::atomic::{AtomicU64, Ordering::SeqCst};
use skipflow_modelcheck::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server-side limits and per-batch solve budgets.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum concurrently open sessions; further `open`s are shed.
    pub max_sessions: usize,
    /// Global memory budget (engine estimates summed across sessions).
    /// Exceeding it evicts idle sessions LRU-first; if nothing is evictable
    /// the triggering request is shed.
    pub memory_budget_bytes: usize,
    /// Per-session queued-root shed threshold: `roots` requests beyond this
    /// many not-yet-batched roots are refused.
    pub max_queued_roots: usize,
    /// Step budget applied to each coalesced batch solve (`None` = run each
    /// batch to the fixpoint).
    pub batch_step_budget: Option<u64>,
    /// Wall-clock budget applied to each coalesced batch solve.
    pub batch_wall_budget: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            memory_budget_bytes: 512 << 20,
            max_queued_roots: 4096,
            batch_step_budget: None,
            batch_wall_budget: None,
        }
    }
}

/// Why a registry request was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// No session with that name is open.
    UnknownSession(String),
    /// A session with that name is already open.
    DuplicateSession(String),
    /// Admission control shed the request (session cap, root-queue cap, or
    /// memory budget with nothing evictable).
    Overloaded(String),
    /// A root id is out of range for the session's program.
    InvalidRoot {
        /// The offending id.
        method: MethodId,
        /// Methods in the program.
        method_count: usize,
    },
    /// The session hit an unrecoverable analysis error (e.g. flow-capacity
    /// exhaustion); its last published epoch stays queryable.
    SessionFailed(String),
    /// A `flush` wait exceeded its deadline.
    Timeout(String),
    /// Session construction was rejected by the analysis layer.
    Analysis(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownSession(name) => write!(f, "unknown session `{name}`"),
            ServerError::DuplicateSession(name) => write!(f, "session `{name}` already open"),
            ServerError::Overloaded(what) => write!(f, "overloaded: {what}"),
            ServerError::InvalidRoot { method, method_count } => write!(
                f,
                "root method m{} does not exist (program has {method_count} methods)",
                method.index()
            ),
            ServerError::SessionFailed(msg) => write!(f, "session failed: {msg}"),
            ServerError::Timeout(what) => write!(f, "timed out waiting for {what}"),
            ServerError::Analysis(msg) => write!(f, "analysis rejected: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// One queued session mutation, applied by the writer in arrival order.
/// Runs of same-kind root ops are coalesced into one session call; the
/// relative order of adds, retracts, and edits is preserved exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionOp {
    /// Register an entry point ([`AnalysisSession::add_roots`]).
    AddRoot(MethodId),
    /// Remove an entry point ([`AnalysisSession::retract_roots`]).
    RetractRoot(MethodId),
    /// Apply a method-body edit ([`AnalysisSession::apply_edit`]).
    Edit(MethodId, MethodEdit),
}

/// One published fixpoint: the epoch number, the configuration it covers
/// (roots + masked bodies), and the owned snapshot readers query.
/// `Arc`-published through the epoch cell; cloning is cheap.
///
/// Epochs are **not monotone** across retractions and edits — see the
/// module docs. A `Complete` epoch is the exact fixpoint of
/// (`roots`, `masked`); nothing relates it to the previous epoch's sets.
#[derive(Clone, Debug)]
pub struct PublishedEpoch {
    /// Publication sequence number (0 = the empty pre-solve epoch).
    pub epoch: u64,
    /// The session roots this fixpoint covers, in acceptance order.
    pub roots: Vec<MethodId>,
    /// The method bodies masked out by edits when this fixpoint was
    /// published, in id order — the mask a fresh oracle needs
    /// ([`AnalysisConfig::with_masked_methods`]) to reproduce it.
    pub masked: Vec<MethodId>,
    /// The queryable fixpoint (or checkpoint, when
    /// [`PublishedEpoch::is_complete`] is false).
    pub snapshot: OwnedSnapshot,
}

impl PublishedEpoch {
    /// Whether the snapshot is a reached fixpoint over
    /// [`PublishedEpoch::roots`] (vs. a budget/cancel checkpoint).
    pub fn is_complete(&self) -> bool {
        self.snapshot.completeness() == Completeness::Complete
    }
}

#[derive(Default)]
struct Counters {
    epochs_published: AtomicU64,
    partial_epochs: AtomicU64,
    queries_served: AtomicU64,
    batches: AtomicU64,
    batched_roots: AtomicU64,
    sheds: AtomicU64,
}

/// A live session: the publication cell, the root queue, and counters.
/// Obtained from [`Registry::open`] / [`Registry::get`]; all methods are
/// safe to call from any thread.
pub struct SessionHandle {
    name: String,
    program: Arc<Program>,
    cell: EpochCell<PublishedEpoch>,
    /// The client/writer handshake — queue, pause/resume/cancel/shutdown
    /// flags, wake and settle condvars (see `gate.rs` for the lock
    /// discipline).
    gate: SessionGate<SessionOp>,
    counters: Counters,
    /// Milliseconds since registry start of the last client request naming
    /// this session (the LRU clock for eviction).
    last_touch_ms: AtomicU64,
}

impl SessionHandle {
    /// The session name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The program under analysis (shared with the writer thread).
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The last published epoch — the lock-free read path. Counts as a
    /// served query.
    pub fn published(&self) -> Arc<PublishedEpoch> {
        self.counters.queries_served.fetch_add(1, SeqCst);
        self.cell.load()
    }

    /// The current publication epoch number without loading the snapshot.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Epochs published by the writer (excluding the initial empty epoch).
    pub fn epochs_published(&self) -> u64 {
        self.counters.epochs_published.load(SeqCst)
    }

    /// Of [`SessionHandle::epochs_published`], how many carried a partial
    /// (budget- or cancel-checkpointed) fixpoint.
    pub fn partial_epochs(&self) -> u64 {
        self.counters.partial_epochs.load(SeqCst)
    }

    /// Queries served from published epochs.
    pub fn queries_served(&self) -> u64 {
        self.counters.queries_served.load(SeqCst)
    }

    /// Coalesced batch solves the writer has run.
    pub fn batches(&self) -> u64 {
        self.counters.batches.load(SeqCst)
    }

    /// Mutations (root adds, retractions, edits) that arrived through those
    /// batches (so `batched_roots / batches` is the coalescing ratio).
    pub fn batched_roots(&self) -> u64 {
        self.counters.batched_roots.load(SeqCst)
    }

    /// Requests shed at this session's root-queue cap.
    pub fn sheds(&self) -> u64 {
        self.counters.sheds.load(SeqCst)
    }

    /// The engine memory estimate after the last batch, in bytes.
    pub fn memory_estimate(&self) -> usize {
        self.gate.memory_estimate()
    }

    /// Queued mutations (root adds, retractions, edits) not yet picked up
    /// by the writer.
    pub fn queued_roots(&self) -> usize {
        self.gate.queued_len()
    }

    /// Trips the cancel token: an in-flight batch checkpoints within one
    /// stride and the session pauses until new roots or a flush arrive.
    pub fn cancel(&self) {
        self.gate.cancel();
    }

    /// Whether the session is idle: nothing queued, nothing mid-batch,
    /// nothing awaiting resume. Idle sessions are eviction candidates.
    pub fn is_idle(&self) -> bool {
        self.gate.is_idle()
    }

    /// Sticky failure message, if the session hit an unrecoverable error.
    pub fn failure(&self) -> Option<String> {
        self.gate.failure()
    }

    fn touch(&self, clock: &Instant) {
        let ms = clock.elapsed().as_millis() as u64;
        self.last_touch_ms.store(ms, SeqCst);
    }

    /// Blocks until every queued root has been solved in and the resulting
    /// epoch published, or the timeout passes. Returns the settled epoch.
    fn wait_settled(&self, timeout: Duration) -> Result<Arc<PublishedEpoch>, ServerError> {
        match self.gate.wait_settled(timeout) {
            Settle::Idle => Ok(self.cell.load()),
            Settle::Failed(msg) => Err(ServerError::SessionFailed(msg)),
            Settle::TimedOut => Err(ServerError::Timeout("flush".into())),
        }
    }
}

/// A point-in-time copy of one session's observable state, for the `stats`
/// endpoint.
#[derive(Clone, Debug)]
pub struct SessionStats {
    /// Session name.
    pub name: String,
    /// Last published epoch number.
    pub epoch: u64,
    /// Completeness of that epoch.
    pub completeness: Completeness,
    /// Roots covered by that epoch.
    pub roots_covered: usize,
    /// Roots queued but not yet batched.
    pub queued_roots: usize,
    /// Engine memory estimate in bytes.
    pub memory_bytes: usize,
    /// Solver statistics of the published fixpoint (steps, joins, scheduler
    /// and interrupt counters).
    pub solve: SolveStats,
    /// Coalesced batches run.
    pub batches: u64,
    /// Roots those batches carried.
    pub batched_roots: u64,
    /// Epochs published (excluding the initial empty epoch).
    pub epochs_published: u64,
    /// Published epochs that were partial checkpoints.
    pub partial_epochs: u64,
    /// Queries served.
    pub queries_served: u64,
    /// Requests shed at the root-queue cap.
    pub sheds: u64,
    /// Sticky failure, if any.
    pub failed: Option<String>,
}

/// Registry-wide counters for the `stats` endpoint.
#[derive(Clone, Debug, Default)]
pub struct RegistryStats {
    /// Sessions currently open.
    pub sessions_live: usize,
    /// Sessions opened since start.
    pub sessions_opened: u64,
    /// Sessions evicted (explicitly or by the memory budget).
    pub sessions_evicted: u64,
    /// Epochs published across all sessions (excluding initial epochs).
    pub epochs_published: u64,
    /// Queries served across all sessions.
    pub queries_served: u64,
    /// Coalesced batches run across all sessions.
    pub batches: u64,
    /// Roots carried by those batches.
    pub batched_roots: u64,
    /// Requests shed by admission control.
    pub sheds: u64,
    /// Summed engine memory estimates, in bytes.
    pub memory_bytes: usize,
    /// The configured memory budget, in bytes.
    pub memory_budget_bytes: usize,
}

struct Entry {
    handle: Arc<SessionHandle>,
    writer: Option<JoinHandle<()>>,
}

/// The multi-session front door: opens sessions, routes roots and queries,
/// and enforces the admission/eviction policy of its [`ServerConfig`].
pub struct Registry {
    cfg: ServerConfig,
    start: Instant,
    sessions: Mutex<HashMap<String, Entry>>,
    opened: AtomicU64,
    evicted: AtomicU64,
    shed_total: AtomicU64,
    /// Evicted sessions' final counters, folded in so registry totals don't
    /// regress when a session dies.
    retired_queries: AtomicU64,
    retired_epochs: AtomicU64,
    retired_batches: AtomicU64,
    retired_batched_roots: AtomicU64,
}

impl Registry {
    /// A registry with the given limits.
    pub fn new(cfg: ServerConfig) -> Self {
        Registry {
            cfg,
            start: Instant::now(),
            sessions: Mutex::new(HashMap::new()),
            opened: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            retired_queries: AtomicU64::new(0),
            retired_epochs: AtomicU64::new(0),
            retired_batches: AtomicU64::new(0),
            retired_batched_roots: AtomicU64::new(0),
        }
    }

    /// The configured limits.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Opens a session named `name` analyzing `program` under `config`
    /// (per-batch budgets from the [`ServerConfig`] are applied on top).
    /// Publishes the empty epoch 0 immediately, spawns the writer thread,
    /// and returns the handle.
    pub fn open(
        &self,
        name: &str,
        program: Arc<Program>,
        config: AnalysisConfig,
    ) -> Result<Arc<SessionHandle>, ServerError> {
        let config = self.apply_budgets(config);
        // Validate eagerly on the caller's thread (and produce the initial
        // empty snapshot) so `open` reports builder errors synchronously.
        let initial_session = AnalysisSession::builder(&program)
            .config(config.clone())
            .build()
            .map_err(|e| ServerError::Analysis(e.to_string()))?;
        let initial_masked = initial_session.masked_methods();
        let initial = initial_session.owned_snapshot();

        let mut sessions = self.sessions.lock().unwrap();
        if sessions.contains_key(name) {
            return Err(ServerError::DuplicateSession(name.to_string()));
        }
        if sessions.len() >= self.cfg.max_sessions {
            self.shed_total.fetch_add(1, SeqCst);
            return Err(ServerError::Overloaded(format!(
                "session cap reached ({} open)",
                sessions.len()
            )));
        }
        let handle = Arc::new(SessionHandle {
            name: name.to_string(),
            program: program.clone(),
            cell: EpochCell::new(Arc::new(PublishedEpoch {
                epoch: 0,
                roots: Vec::new(),
                masked: initial_masked,
                snapshot: initial,
            })),
            gate: SessionGate::new(),
            counters: Counters::default(),
            last_touch_ms: AtomicU64::new(0),
        });
        handle.touch(&self.start);
        let writer = {
            let handle = handle.clone();
            std::thread::Builder::new()
                .name(format!("skipflow-writer-{name}"))
                .spawn(move || writer_loop(&handle, &program, config))
                .expect("spawn writer thread")
        };
        self.opened.fetch_add(1, SeqCst);
        sessions.insert(
            name.to_string(),
            Entry { handle: handle.clone(), writer: Some(writer) },
        );
        drop(sessions);
        // Opening a session may push the fleet over the memory budget once
        // it starts solving; check eagerly so pressure from *existing*
        // sessions is relieved before this one grows.
        let _ = self.relieve_memory_pressure(name);
        Ok(handle)
    }

    /// The handle for `name`, refreshing its LRU clock.
    pub fn get(&self, name: &str) -> Result<Arc<SessionHandle>, ServerError> {
        let sessions = self.sessions.lock().unwrap();
        let entry = sessions
            .get(name)
            .ok_or_else(|| ServerError::UnknownSession(name.to_string()))?;
        entry.handle.touch(&self.start);
        Ok(entry.handle.clone())
    }

    /// Validates and queues roots for `name`'s next coalesced batch,
    /// shedding at the queue cap and relieving memory pressure afterwards.
    /// Returns the number of roots queued.
    pub fn add_roots(&self, name: &str, roots: Vec<MethodId>) -> Result<usize, ServerError> {
        self.enqueue_ops(name, roots, SessionOp::AddRoot)
    }

    /// Validates and queues root retractions for `name`'s next batch — the
    /// non-monotone inverse of [`Registry::add_roots`]; same shed policy.
    /// Returns the number of retractions queued.
    pub fn retract_roots(&self, name: &str, roots: Vec<MethodId>) -> Result<usize, ServerError> {
        self.enqueue_ops(name, roots, SessionOp::RetractRoot)
    }

    /// Validates and queues a method-body edit for `name`'s next batch.
    pub fn edit(&self, name: &str, method: MethodId, edit: MethodEdit) -> Result<(), ServerError> {
        self.enqueue_ops(name, vec![method], |m| SessionOp::Edit(m, edit))?;
        Ok(())
    }

    /// Shared mutation path: validates method ids, applies the queue-cap
    /// shed policy, relieves memory pressure, and enqueues one op per
    /// method (the writer preserves arrival order across op kinds).
    fn enqueue_ops(
        &self,
        name: &str,
        methods: Vec<MethodId>,
        to_op: impl Fn(MethodId) -> SessionOp,
    ) -> Result<usize, ServerError> {
        let handle = self.get(name)?;
        if let Some(msg) = handle.failure() {
            return Err(ServerError::SessionFailed(msg));
        }
        let method_count = handle.program.method_count();
        for &m in &methods {
            if m.index() >= method_count {
                return Err(ServerError::InvalidRoot { method: m, method_count });
            }
        }
        let queued = handle.queued_roots();
        if queued + methods.len() > self.cfg.max_queued_roots {
            handle.counters.sheds.fetch_add(1, SeqCst);
            self.shed_total.fetch_add(1, SeqCst);
            return Err(ServerError::Overloaded(format!(
                "mutation queue full ({queued} queued, cap {})",
                self.cfg.max_queued_roots
            )));
        }
        // Relieve pressure *before* enqueueing: if the budget cannot be met
        // even by evicting idle sessions, the request is shed whole instead
        // of queueing work the fleet has no room to solve.
        self.relieve_memory_pressure(name)?;
        let n = methods.len();
        // Validation and shedding above; the gate just queues and wakes.
        handle.gate.enqueue(methods.into_iter().map(to_op).collect());
        Ok(n)
    }

    /// Waits until `name` has no queued or in-flight work and returns its
    /// settled (complete unless failed/shedding) published epoch.
    pub fn flush(&self, name: &str, timeout: Duration) -> Result<Arc<PublishedEpoch>, ServerError> {
        let handle = self.get(name)?;
        handle.wait_settled(timeout)
    }

    /// Trips `name`'s cancel token: the in-flight batch (if any) checkpoints
    /// and publishes a partial epoch; the session pauses until new roots or
    /// a flush arrive.
    pub fn cancel(&self, name: &str) -> Result<(), ServerError> {
        let handle = self.get(name)?;
        handle.cancel();
        Ok(())
    }

    /// Evicts `name`: stops its writer (cancelling any in-flight batch) and
    /// drops the session. Published epochs held by readers stay valid.
    pub fn evict(&self, name: &str) -> Result<(), ServerError> {
        let entry = {
            let mut sessions = self.sessions.lock().unwrap();
            sessions
                .remove(name)
                .ok_or_else(|| ServerError::UnknownSession(name.to_string()))?
        };
        self.retire(entry);
        Ok(())
    }

    /// Stops every session (used at server shutdown).
    pub fn shutdown_all(&self) {
        let entries: Vec<Entry> = {
            let mut sessions = self.sessions.lock().unwrap();
            sessions.drain().map(|(_, e)| e).collect()
        };
        for entry in entries {
            self.retire(entry);
        }
    }

    /// Point-in-time registry counters.
    pub fn stats(&self) -> RegistryStats {
        let sessions = self.sessions.lock().unwrap();
        let mut s = RegistryStats {
            sessions_live: sessions.len(),
            sessions_opened: self.opened.load(SeqCst),
            sessions_evicted: self.evicted.load(SeqCst),
            epochs_published: self.retired_epochs.load(SeqCst),
            queries_served: self.retired_queries.load(SeqCst),
            batches: self.retired_batches.load(SeqCst),
            batched_roots: self.retired_batched_roots.load(SeqCst),
            sheds: self.shed_total.load(SeqCst),
            memory_bytes: 0,
            memory_budget_bytes: self.cfg.memory_budget_bytes,
        };
        for entry in sessions.values() {
            let h = &entry.handle;
            s.epochs_published += h.epochs_published();
            s.queries_served += h.queries_served();
            s.batches += h.batches();
            s.batched_roots += h.batched_roots();
            s.memory_bytes += h.memory_estimate();
        }
        s
    }

    /// Point-in-time stats for one session.
    pub fn session_stats(&self, name: &str) -> Result<SessionStats, ServerError> {
        let handle = self.get(name)?;
        let published = handle.cell.load();
        Ok(SessionStats {
            name: handle.name.clone(),
            epoch: published.epoch,
            completeness: published.snapshot.completeness(),
            roots_covered: published.roots.len(),
            queued_roots: handle.queued_roots(),
            memory_bytes: handle.memory_estimate(),
            solve: published.snapshot.stats().clone(),
            batches: handle.batches(),
            batched_roots: handle.batched_roots(),
            epochs_published: handle.epochs_published(),
            partial_epochs: handle.partial_epochs(),
            queries_served: handle.queries_served(),
            sheds: handle.sheds(),
            failed: handle.failure(),
        })
    }

    /// Whether a session with this name is currently open. Advisory only —
    /// another client may open or evict the name between this check and a
    /// follow-up request; `open` re-checks authoritatively.
    pub fn contains(&self, name: &str) -> bool {
        self.sessions.lock().unwrap().contains_key(name)
    }

    /// Names of the open sessions, sorted.
    pub fn session_names(&self) -> Vec<String> {
        let sessions = self.sessions.lock().unwrap();
        let mut names: Vec<String> = sessions.keys().cloned().collect();
        names.sort();
        names
    }

    fn apply_budgets(&self, config: AnalysisConfig) -> AnalysisConfig {
        let mut config = config;
        if let Some(steps) = self.cfg.batch_step_budget {
            config = config.with_step_budget(steps);
        }
        if let Some(wall) = self.cfg.batch_wall_budget {
            config = config.with_wall_budget(wall);
        }
        config
    }

    /// While the summed memory estimate exceeds the budget, evict idle
    /// sessions LRU-first (never `exempt`, the session serving the current
    /// request). Sheds with [`ServerError::Overloaded`] if pressure remains
    /// and nothing is evictable.
    fn relieve_memory_pressure(&self, exempt: &str) -> Result<(), ServerError> {
        loop {
            let victim = {
                let sessions = self.sessions.lock().unwrap();
                let total: usize = sessions.values().map(|e| e.handle.memory_estimate()).sum();
                if total <= self.cfg.memory_budget_bytes {
                    return Ok(());
                }
                let name = sessions
                    .values()
                    .filter(|e| e.handle.name() != exempt && e.handle.is_idle())
                    .min_by_key(|e| e.handle.last_touch_ms.load(SeqCst))
                    .map(|e| e.handle.name.clone());
                match name {
                    Some(name) => name,
                    None => {
                        self.shed_total.fetch_add(1, SeqCst);
                        return Err(ServerError::Overloaded(format!(
                            "memory budget exceeded ({total} > {} bytes) with no idle session to evict",
                            self.cfg.memory_budget_bytes
                        )));
                    }
                }
            };
            // Re-acquires the lock per round so concurrent requests are not
            // starved while a victim's writer thread winds down.
            let _ = self.evict(&victim);
        }
    }

    fn retire(&self, mut entry: Entry) {
        entry.handle.gate.signal_shutdown();
        if let Some(writer) = entry.writer.take() {
            let _ = writer.join();
        }
        let h = &entry.handle;
        self.evicted.fetch_add(1, SeqCst);
        self.retired_queries.fetch_add(h.queries_served(), SeqCst);
        self.retired_epochs.fetch_add(h.epochs_published(), SeqCst);
        self.retired_batches.fetch_add(h.batches(), SeqCst);
        self.retired_batched_roots.fetch_add(h.batched_roots(), SeqCst);
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        self.shutdown_all();
    }
}

/// The per-session writer loop: wait for work, drain the queue into one
/// batch, run a budgeted cancellable solve, publish the epoch.
fn writer_loop(handle: &SessionHandle, program: &Arc<Program>, config: AnalysisConfig) {
    let mut session = match AnalysisSession::builder(program).config(config).build() {
        Ok(s) => s,
        Err(e) => {
            // `open` already validated this exact build; record defensively.
            handle.gate.fail(e.to_string());
            return;
        }
    };
    loop {
        // Extract the next batch (and reset the cancel token) under the
        // gate lock — see the lock-discipline note in `gate.rs`.
        let batch = match handle.gate.next_batch() {
            WriterStep::Shutdown => return,
            WriterStep::Batch(batch) => batch,
        };

        if !batch.is_empty() {
            let n = batch.len() as u64;
            // Ids were validated against this program at enqueue time.
            if let Err(e) = apply_batch(&mut session, batch) {
                finish_batch(handle, &session, Some(e.to_string()), false);
                continue;
            }
            handle.counters.batched_roots.fetch_add(n, SeqCst);
        }
        handle.counters.batches.fetch_add(1, SeqCst);

        // Mapping to the (Copy) reason releases the outcome's borrow of the
        // session before the publication below re-borrows it.
        match session
            .solve_interruptible(Some(handle.gate.token()))
            .map(|outcome| outcome.interrupt_reason())
        {
            Ok(reason) => {
                publish_from(handle, &session);
                match reason {
                    None => finish_batch(handle, &session, None, false),
                    Some(InterruptReason::Cancelled) => {
                        // Stay paused (set by `cancel`) with `resume`
                        // pending; a flush or new roots pick it back up.
                        finish_batch(handle, &session, None, false)
                    }
                    Some(_) => {
                        // A tripped budget bounds publication latency, not
                        // total work: resume immediately with the next
                        // batch's fresh budget.
                        finish_batch(handle, &session, None, true)
                    }
                }
            }
            Err(e) => {
                // Still publish the consistent checkpoint so queries see the
                // latest sound state.
                publish_from(handle, &session);
                match e {
                    AnalysisError::WorkerPanicked { .. } => {
                        // The session degraded to sequential solving and
                        // stays usable; retry the remaining work.
                        finish_batch(handle, &session, None, true)
                    }
                    other => finish_batch(handle, &session, Some(other.to_string()), false),
                }
            }
        }
    }
}

/// Applies one drained queue as an ordered batch: maximal runs of same-kind
/// root ops collapse into one `add_roots`/`retract_roots` call, edits apply
/// in place. Order across kinds is preserved exactly — `add a, retract a`
/// and `retract a, add a` are different programs.
fn apply_batch(
    session: &mut AnalysisSession<'_>,
    ops: Vec<SessionOp>,
) -> Result<(), AnalysisError> {
    let mut i = 0;
    while i < ops.len() {
        match ops[i] {
            SessionOp::AddRoot(_) => {
                let run: Vec<MethodId> = ops[i..]
                    .iter()
                    .map_while(|op| match op {
                        SessionOp::AddRoot(m) => Some(*m),
                        _ => None,
                    })
                    .collect();
                i += run.len();
                session.add_roots(run)?;
            }
            SessionOp::RetractRoot(_) => {
                let run: Vec<MethodId> = ops[i..]
                    .iter()
                    .map_while(|op| match op {
                        SessionOp::RetractRoot(m) => Some(*m),
                        _ => None,
                    })
                    .collect();
                i += run.len();
                session.retract_roots(run)?;
            }
            SessionOp::Edit(m, edit) => {
                i += 1;
                session.apply_edit(m, edit)?;
            }
        }
    }
    Ok(())
}

fn publish_from(handle: &SessionHandle, session: &AnalysisSession<'_>) {
    let snapshot = session.owned_snapshot();
    if snapshot.completeness() == Completeness::Partial {
        handle.counters.partial_epochs.fetch_add(1, SeqCst);
    }
    handle.counters.epochs_published.fetch_add(1, SeqCst);
    let epoch = handle.cell.epoch() + 1;
    handle.cell.publish(Arc::new(PublishedEpoch {
        epoch,
        roots: session.roots().to_vec(),
        masked: session.masked_methods(),
        snapshot,
    }));
}

fn finish_batch(
    handle: &SessionHandle,
    session: &AnalysisSession<'_>,
    failed: Option<String>,
    resume: bool,
) {
    handle.gate.finish_batch(session.memory_estimate(), failed, resume);
}
