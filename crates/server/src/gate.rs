//! The writer-thread handshake, extracted: queue, pause, resume, cancel,
//! shutdown, and settle signalling behind one small state machine.
//!
//! [`SessionGate`] is the synchronization half of a registry session — the
//! part that coordinates *client* threads (enqueue work, cancel, flush,
//! evict) with the single *writer* thread that drains the queue into
//! coalesced batches. It is generic over the work-item type so the
//! model-check suite can exhaustively explore the handshake with small
//! integers instead of dragging the whole analysis engine into the explorer
//! (`crates/server/tests/model_check.rs`); the registry instantiates it with
//! [`MethodId`](skipflow_ir::MethodId).
//!
//! # Lock discipline
//!
//! One mutex guards all gate state. The cancel token is tripped/reset only
//! while holding it: [`SessionGate::next_batch`] resets the token under the
//! same lock it uses to extract a batch, so a [`SessionGate::cancel`] that
//! acquires the lock *after* extraction reliably trips the in-flight solve,
//! and one that acquires it *before* is observed directly as `paused`. Two
//! condvars hang off the mutex: `wake` (writer side — new work, unpause,
//! shutdown) and `settled` (client side — a batch finished, flush waiters
//! should re-check).
//!
//! # Writer contract
//!
//! The writer thread loops on [`SessionGate::next_batch`]; every
//! [`WriterStep::Batch`] (even an empty one — a resume) MUST be answered by
//! exactly one [`SessionGate::finish_batch`], or `in_batch` stays latched
//! and flush waiters hang until their deadline. [`WriterStep::Shutdown`]
//! ends the loop.

use skipflow_core::CancelToken;
use skipflow_modelcheck::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Gate-level mutable state; see the module docs for the lock discipline.
struct GateState<T> {
    /// Work queued by clients, drained wholesale into the next batch.
    queue: Vec<T>,
    /// An interrupted batch left work behind; run again even if the queue
    /// stays empty.
    resume: bool,
    /// A client cancel paused the session; don't run until new work or a
    /// flush arrives.
    paused: bool,
    /// The writer is between batch extraction and [`SessionGate::finish_batch`].
    in_batch: bool,
    /// Eviction/shutdown requested; the writer exits at its next
    /// [`SessionGate::next_batch`].
    shutdown: bool,
    /// Engine memory estimate reported by the last `finish_batch`.
    mem_estimate: usize,
    /// Sticky unrecoverable error; the writer stops batching but the
    /// session keeps serving its last published state.
    failed: Option<String>,
}

/// What the writer thread should do next, from [`SessionGate::next_batch`].
pub enum WriterStep<T> {
    /// Exit the writer loop; the session is being evicted or the server is
    /// shutting down.
    Shutdown,
    /// Run one coalesced batch over these items (possibly empty, when only
    /// a resume was pending). Must be answered by one
    /// [`SessionGate::finish_batch`].
    Batch(Vec<T>),
}

/// How a [`SessionGate::wait_settled`] ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Settle {
    /// No queued or in-flight work remains; published state is current.
    Idle,
    /// The session latched a sticky failure (message attached).
    Failed(String),
    /// The deadline passed first.
    TimedOut,
}

/// The client/writer handshake for one session: a work queue plus the
/// pause/resume/cancel/shutdown flags, the wake and settle condvars, and
/// the cancel token, all behind one mutex.
pub struct SessionGate<T> {
    shared: Mutex<GateState<T>>,
    /// Wakes the writer (new work, unpause, shutdown).
    wake: Condvar,
    /// Wakes flush waiters after each batch (and on failure/shutdown).
    settled: Condvar,
    cancel: CancelToken,
}

impl<T> Default for SessionGate<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SessionGate<T> {
    /// A fresh gate: empty queue, running (not paused), no failure.
    pub fn new() -> Self {
        SessionGate {
            shared: Mutex::new(GateState {
                queue: Vec::new(),
                resume: false,
                paused: false,
                in_batch: false,
                shutdown: false,
                mem_estimate: 0,
                failed: None,
            }),
            wake: Condvar::new(),
            settled: Condvar::new(),
            cancel: CancelToken::new(),
        }
    }

    /// The cancel token the writer should pass to its interruptible solve.
    /// Trip it through [`SessionGate::cancel`], not directly — see the lock
    /// discipline in the module docs.
    pub fn token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Queues work for the next coalesced batch and un-pauses the session.
    pub fn enqueue(&self, items: Vec<T>) {
        let mut st = self.shared.lock().unwrap();
        st.queue.extend(items);
        st.paused = false;
        drop(st);
        self.wake.notify_all();
    }

    /// Work queued but not yet extracted into a batch.
    pub fn queued_len(&self) -> usize {
        self.shared.lock().unwrap().queue.len()
    }

    /// Trips the cancel token and pauses the session: an in-flight batch
    /// checkpoints within one solver stride, and the leftover work stays
    /// parked (`resume` pending) until new work or a flush un-pauses it.
    pub fn cancel(&self) {
        let mut st = self.shared.lock().unwrap();
        st.paused = true;
        // Resume whatever the cancelled batch leaves behind once unpaused.
        st.resume = true;
        self.cancel.cancel();
        drop(st);
        self.wake.notify_all();
    }

    /// Whether the session is idle: nothing queued, nothing mid-batch,
    /// nothing awaiting an un-paused resume. Idle sessions are eviction
    /// candidates.
    pub fn is_idle(&self) -> bool {
        let st = self.shared.lock().unwrap();
        st.queue.is_empty() && !st.in_batch && (!st.resume || st.paused)
    }

    /// The sticky failure message, if the session failed.
    pub fn failure(&self) -> Option<String> {
        self.shared.lock().unwrap().failed.clone()
    }

    /// Latches a sticky failure from outside the batch cycle (e.g. the
    /// writer failing to construct its session) and wakes flush waiters so
    /// they observe it.
    pub fn fail(&self, msg: String) {
        let mut st = self.shared.lock().unwrap();
        st.failed = Some(msg);
        drop(st);
        self.settled.notify_all();
    }

    /// The memory estimate reported by the last finished batch, in bytes.
    pub fn memory_estimate(&self) -> usize {
        self.shared.lock().unwrap().mem_estimate
    }

    /// Writer side: block until there is work (or shutdown), extract the
    /// whole queue as one batch, and reset the cancel token — all under the
    /// gate lock, per the module-level discipline. Returns
    /// [`WriterStep::Shutdown`] when the session is being torn down.
    pub fn next_batch(&self) -> WriterStep<T> {
        let mut st = self.shared.lock().unwrap();
        loop {
            if st.shutdown {
                return WriterStep::Shutdown;
            }
            let has_work = !st.queue.is_empty() || st.resume;
            if has_work && !st.paused && st.failed.is_none() {
                break;
            }
            st = self.wake.wait(st).unwrap();
        }
        st.resume = false;
        st.in_batch = true;
        self.cancel.reset();
        WriterStep::Batch(std::mem::take(&mut st.queue))
    }

    /// Writer side: close out the batch opened by the last
    /// [`WriterStep::Batch`]. `resume` re-arms the gate (budget-interrupted
    /// work remains), `failed` latches the sticky error; flush waiters are
    /// woken either way.
    pub fn finish_batch(&self, mem_estimate: usize, failed: Option<String>, resume: bool) {
        let mut st = self.shared.lock().unwrap();
        st.in_batch = false;
        st.mem_estimate = mem_estimate;
        if resume {
            st.resume = true;
        }
        if failed.is_some() {
            st.failed = failed;
        }
        drop(st);
        self.settled.notify_all();
    }

    /// Client side: block until the gate is idle (un-pausing it — the
    /// caller explicitly wants the work finished), the session fails, or
    /// `timeout` passes.
    pub fn wait_settled(&self, timeout: Duration) -> Settle {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock().unwrap();
        loop {
            // Un-pause every round so a concurrent cancel cannot stall the
            // wait.
            if st.paused {
                st.paused = false;
                self.wake.notify_all();
            }
            if let Some(msg) = &st.failed {
                return Settle::Failed(msg.clone());
            }
            if st.queue.is_empty() && !st.in_batch && !st.resume {
                return Settle::Idle;
            }
            let now = Instant::now();
            if now >= deadline {
                return Settle::TimedOut;
            }
            let (guard, _) = self.settled.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// Requests writer exit: trips the cancel token (so an in-flight batch
    /// checkpoints promptly) and wakes both sides.
    pub fn signal_shutdown(&self) {
        let mut st = self.shared.lock().unwrap();
        st.shutdown = true;
        self.cancel.cancel();
        drop(st);
        self.wake.notify_all();
        self.settled.notify_all();
    }
}
