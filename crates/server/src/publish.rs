//! Lock-free epoch-based snapshot publication.
//!
//! [`EpochCell`] is the primitive behind "readers are never blocked by an
//! in-flight solve": a writer thread *publishes* each new fixpoint by
//! swapping an atomic pointer and bumping an epoch counter, while any number
//! of reader threads *load* the current value without ever taking a lock —
//! the reader fast path is one CAS on a private pin slot plus three atomic
//! loads, all wait-free with respect to the writer.
//!
//! # Protocol
//!
//! The cell owns the current value through a raw pointer produced by
//! [`Arc::into_raw`]. Readers pin the epoch they observed into one of the
//! cell's pin slots (claimed by CAS from `IDLE`), re-validate that the
//! epoch did not move, clone the `Arc` out via
//! [`Arc::increment_strong_count`], and release the slot. Writers swap the
//! pointer, record the displaced pointer on a retired list stamped with the
//! pre-publish epoch, bump the epoch, and then reclaim every retired pointer
//! whose stamp is not covered by any pinned slot (a pin at epoch `e` blocks
//! reclamation of pointers retired at epochs `>= e`).
//!
//! # Safety argument
//!
//! A retired pointer `P` stamped `e_r` is freed only when no slot holds a
//! pin `<= e_r`. A reader that obtained `P` from `current` did so while its
//! slot was pinned at some validated epoch `e` with `e <= e_r` (the epoch is
//! monotone and was `e` no later than the pointer load; `P` was retired at
//! `e_r >= e`), so the writer's scan observes the pin and keeps `P` alive
//! until the reader has taken its own strong count and released the slot.
//! Conversely a reader whose pin was invalidated by a concurrent publish
//! re-pins at the newer epoch before loading, so it can never hold a
//! pointer older than its published pin.
//!
//! # Memory-ordering contract
//!
//! Every atomic in this module uses `SeqCst`, deliberately. The safety
//! argument above is stated in terms of a single *total order* over the
//! writer's swap → bump → pin-scan and the reader's pin → validate →
//! pointer-load sequences ("the epoch was `e` no later than the pointer
//! load", "the scan observes the pin"). `SeqCst` gives exactly that total
//! order; proving the same claims from acquire/release pairs would have to
//! rule out the IRIW-style reordering where the writer's scan and the
//! reader's pin each miss the other — a fence-placement argument that is
//! easy to get subtly wrong and impossible for the serialized model checker
//! (which explores sequentially consistent interleavings, see
//! `crates/modelcheck`) to distinguish from the weaker code it would
//! actually be running. Publication is orders of magnitude rarer than the
//! solver work that produces a snapshot, so the stronger fences cost
//! nothing measurable; the `serve-` bench family gates that claim.
//!
//! Two orderings are load-bearing enough to call out:
//!
//! * The reader's **pin/validate/clone dance**: the slot store (pin) must be
//!   ordered *before* the epoch re-load (validate), which must be ordered
//!   before the pointer load and the strong-count increment. If the pin
//!   could drift after the validate, a writer could scan, see no pin, and
//!   reclaim the pointer the reader is about to clone.
//! * The writer's **reclamation invariant**: the pointer swap must be
//!   ordered before the epoch bump, and both before the pin scan. A reader
//!   that pins the *old* epoch after the bump would re-validate and re-pin;
//!   one that pinned before the swap is seen by the scan. Note the entire
//!   writer sequence runs under the `retired` mutex — that lock serializes
//!   publishers with each other *and* is what makes the reader slow path
//!   below sound.
//!
//! # Slot exhaustion
//!
//! More simultaneous readers than pin slots is not a spin-forever: a reader
//! hunts for an idle slot for two passes over the array and then falls back
//! to `EpochCell::load_slow`, which takes the `retired` mutex — excluding
//! the whole publisher sequence — and clones `current` under it. The slow
//! path is lock-based (readers momentarily block publishers) but safe,
//! bounded, and counted ([`EpochCell::slow_path_loads`]); with the default
//! 64 slots it is effectively never taken in production. Bounding the hunt
//! is also what makes `load` model-checkable: an unbounded retry loop has
//! unbounded interleavings.
//!
//! # Model checking
//!
//! The `sync` types come from `skipflow-modelcheck`: plain `std::sync`
//! re-exports in every production build, and cooperative shim types under
//! `--features model-check`, where `crates/server/tests/model_check.rs`
//! exhaustively explores reader/writer interleavings of this cell (and
//! proves the explorer would catch a reclamation that skipped the pin scan
//! — see `EpochCell::publish_skipping_pin_check`).

use skipflow_modelcheck::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use skipflow_modelcheck::sync::{Arc, Mutex};

/// Default number of concurrent reader pin slots; far above any realistic
/// simultaneous-reader count for one published cell. See the module docs
/// for what happens when all slots are busy.
pub const READER_SLOTS: usize = 64;

/// Slot value meaning "unclaimed".
const IDLE: u64 = u64::MAX;

struct Retired<T> {
    ptr: *const T,
    /// The epoch under which this pointer was still current (the counter
    /// value *before* the publish that displaced it).
    epoch: u64,
}

/// A lock-free publication cell: one writer (or several, serialized by the
/// internal retire list) publishes `Arc<T>` values; many readers load the
/// current value without blocking.
pub struct EpochCell<T> {
    current: AtomicPtr<T>,
    epoch: AtomicU64,
    slots: Box<[AtomicU64]>,
    /// Times a load fell back to the lock-based slow path because every pin
    /// slot was busy across two hunting passes.
    slow_loads: AtomicU64,
    /// Displaced pointers awaiting a grace period. Publishers hold this
    /// across their whole swap/bump/reclaim sequence; readers take it only
    /// on the slot-exhaustion slow path.
    retired: Mutex<Vec<Retired<T>>>,
}

// SAFETY: sending the cell to another thread hands over `Arc<T>` clones and
// the raw pointers they were leaked from, which is sound exactly when
// `T: Send + Sync` (the same bound `Arc` itself requires to be `Send`). The
// raw pointers are only ever created from and returned to `Arc`.
unsafe impl<T: Send + Sync> Send for EpochCell<T> {}
// SAFETY: shared access is the design: readers run `load` concurrently with
// a publisher, and every shared-state access goes through atomics or the
// `retired` mutex under the protocol in the module docs; the `T: Send +
// Sync` bound is what lets the resulting `Arc<T>` clones cross threads.
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    /// A cell initially publishing `initial` at epoch 0, with the default
    /// [`READER_SLOTS`] pin slots.
    pub fn new(initial: Arc<T>) -> Self {
        Self::with_slots(initial, READER_SLOTS)
    }

    /// A cell with an explicit pin-slot count. `slots == 0` is allowed and
    /// forces every load onto the slow path — useful for pinning the
    /// fallback behavior in tests.
    pub fn with_slots(initial: Arc<T>, slots: usize) -> Self {
        EpochCell {
            current: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
            epoch: AtomicU64::new(0),
            slots: (0..slots).map(|_| AtomicU64::new(IDLE)).collect(),
            slow_loads: AtomicU64::new(0),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// The current epoch: 0 at construction, +1 per publish.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Loads the currently published value: claim a pin slot, validate,
    /// clone the `Arc`, release. Wait-free with respect to publishers on
    /// the fast path; if every slot stays busy for two passes, falls back
    /// to the bounded lock-based slow path (see the module docs).
    pub fn load(&self) -> Arc<T> {
        let attempts = 2 * self.slots.len();
        let mut i = 0usize;
        while i < attempts {
            let slot = &self.slots[i % self.slots.len()];
            let mut pinned = self.epoch.load(SeqCst);
            if slot.compare_exchange(IDLE, pinned, SeqCst, SeqCst).is_ok() {
                // Chase concurrent publishes until the pin matches the
                // epoch; each iteration raises the pin, so retired pointers
                // older than what we will read stay blocked throughout.
                // Bounded: every iteration requires a publisher to have
                // moved the epoch, so a reader only loops while writers
                // make progress.
                loop {
                    let now = self.epoch.load(SeqCst);
                    if now == pinned {
                        break;
                    }
                    pinned = now;
                    slot.store(pinned, SeqCst);
                }
                let ptr = self.current.load(SeqCst);
                // SAFETY: `ptr` came from `Arc::into_raw` and our pin (at an
                // epoch <= any epoch it could be retired under) prevents the
                // publisher from releasing its strong count until the slot
                // goes idle below — see the module-level safety argument.
                let value = unsafe {
                    Arc::increment_strong_count(ptr);
                    Arc::from_raw(ptr)
                };
                slot.store(IDLE, SeqCst);
                return value;
            }
            i += 1;
            std::hint::spin_loop();
        }
        self.load_slow()
    }

    /// Slot-exhaustion fallback: serialize with publishers instead of
    /// pinning. Taking the `retired` mutex excludes the entire publisher
    /// sequence (swap, bump, retire, reclaim all run under it), so between
    /// our pointer load and the strong-count increment nothing can retire —
    /// let alone reclaim — the current value.
    fn load_slow(&self) -> Arc<T> {
        let _publishers_excluded = self.retired.lock().unwrap();
        self.slow_loads.fetch_add(1, SeqCst);
        let ptr = self.current.load(SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and still carries the
        // strong count leaked at publish (reclaiming it requires the
        // `retired` lock we hold), so incrementing and re-materializing one
        // clone is sound.
        unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        }
    }

    /// Times [`EpochCell::load`] fell back to the lock-based slow path
    /// (diagnostics; 0 in any healthy configuration with slots available).
    pub fn slow_path_loads(&self) -> u64 {
        self.slow_loads.load(SeqCst)
    }

    /// Publishes `next`, making it visible to all subsequent [`EpochCell::load`]
    /// calls, and reclaims every previously displaced value no reader can
    /// still be pinning. Returns the new epoch.
    pub fn publish(&self, next: Arc<T>) -> u64 {
        let new_ptr = Arc::into_raw(next) as *mut T;
        // The lock serializes publishers (and excludes slow-path readers);
        // fast-path readers never touch it.
        let mut retired = self.retired.lock().unwrap();
        let old = self.current.swap(new_ptr, SeqCst);
        let retire_epoch = self.epoch.fetch_add(1, SeqCst);
        retired.push(Retired { ptr: old, epoch: retire_epoch });
        let slots = &self.slots;
        retired.retain(|r| {
            let pinned = slots.iter().any(|s| {
                let v = s.load(SeqCst);
                v != IDLE && v <= r.epoch
            });
            if !pinned {
                // SAFETY: this is the strong count `Arc::into_raw` leaked
                // when the pointer was published, and no reader can still
                // reach the pointer (no covering pin exists, `current` no
                // longer holds it, and slow-path readers are excluded by
                // the `retired` lock we hold).
                unsafe { drop(Arc::from_raw(r.ptr)) };
            }
            pinned
        });
        retire_epoch + 1
    }

    /// A deliberately broken publish that reclaims every retired pointer
    /// WITHOUT scanning the pin slots — the exact bug class the epoch
    /// protocol exists to prevent, seeded so the model checker can prove it
    /// would catch a real regression (`tests/model_check.rs` asserts the
    /// explorer reports use-after-free under some interleaving).
    ///
    /// Compiled only under `model-check`, where the shim `Arc` quarantines
    /// reclaimed allocations and intercepts stale touches before any real
    /// dereference — which is the only reason this can exist at all.
    #[cfg(feature = "model-check")]
    pub fn publish_skipping_pin_check(&self, next: Arc<T>) -> u64 {
        let new_ptr = Arc::into_raw(next) as *mut T;
        let mut retired = self.retired.lock().unwrap();
        let old = self.current.swap(new_ptr, SeqCst);
        let retire_epoch = self.epoch.fetch_add(1, SeqCst);
        retired.push(Retired { ptr: old, epoch: retire_epoch });
        for r in retired.drain(..) {
            // SAFETY: NOT SOUND — this drops the published strong count
            // while a pinned reader may still be about to clone it. Only
            // reachable under the model-check shim, whose allocation
            // quarantine turns the resulting use-after-free into a reported
            // model failure instead of undefined behavior.
            unsafe { drop(Arc::from_raw(r.ptr)) };
        }
        retire_epoch + 1
    }

    /// Retired values still awaiting a grace period (diagnostics/tests).
    pub fn retired_len(&self) -> usize {
        self.retired.lock().unwrap().len()
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no readers or publishers remain, so
        // the strong count leaked for `current` at the last publish can be
        // reclaimed unconditionally.
        unsafe { drop(Arc::from_raw(self.current.load(SeqCst))) };
        for r in self.retired.get_mut().unwrap().drain(..) {
            // SAFETY: as above — each retired entry still owns the strong
            // count leaked when its pointer was published, and no reader
            // can exist to pin it.
            unsafe { drop(Arc::from_raw(r.ptr)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipflow_modelcheck::sync::atomic::{AtomicBool, AtomicUsize};
    use std::thread;

    /// Counts drops so leak/double-free bugs show up as plain assertion
    /// failures even without sanitizers.
    struct Tally {
        value: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Drop for Tally {
        fn drop(&mut self) {
            self.drops.fetch_add(1, SeqCst);
        }
    }

    #[test]
    fn load_returns_latest_publish_and_epoch_advances() {
        let cell = EpochCell::new(Arc::new(10u64));
        assert_eq!(*cell.load(), 10);
        assert_eq!(cell.epoch(), 0);
        assert_eq!(cell.publish(Arc::new(11)), 1);
        assert_eq!(*cell.load(), 11);
        assert_eq!(cell.epoch(), 1);
        // Loads are repeatable and independent.
        assert_eq!(*cell.load(), 11);
        assert_eq!(cell.slow_path_loads(), 0, "fast path with free slots");
    }

    #[test]
    fn every_value_is_dropped_exactly_once() {
        let drops = Arc::new(AtomicUsize::new(0));
        let mk = |v| Arc::new(Tally { value: v, drops: drops.clone() });
        let held;
        {
            let cell = EpochCell::new(mk(0));
            for v in 1..=5 {
                cell.publish(mk(v));
            }
            held = cell.load();
            assert_eq!(held.value, 5);
            // With no pinned readers, everything but the current value has
            // been reclaimed during publishes.
            assert_eq!(cell.retired_len(), 0);
            assert_eq!(drops.load(SeqCst), 5);
        }
        // Dropping the cell releases the published count; our clone still
        // keeps the value alive.
        assert_eq!(drops.load(SeqCst), 5);
        drop(held);
        assert_eq!(drops.load(SeqCst), 6);
    }

    #[test]
    fn zero_slots_degrades_to_the_slow_path_and_stays_correct() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = EpochCell::with_slots(
            Arc::new(Tally { value: 0, drops: drops.clone() }),
            0,
        );
        // Every load must fall back (no slots exist), still returning the
        // latest value and keeping reclamation exact.
        for v in 1..=4 {
            assert_eq!(cell.load().value, v - 1);
            cell.publish(Arc::new(Tally { value: v, drops: drops.clone() }));
        }
        assert_eq!(cell.load().value, 4);
        assert_eq!(cell.slow_path_loads(), 5);
        assert_eq!(cell.retired_len(), 0, "slow-path loads never block reclamation");
        assert_eq!(drops.load(SeqCst), 4);
        drop(cell);
        assert_eq!(drops.load(SeqCst), 5);
    }

    #[test]
    fn slow_path_readers_race_publishers_without_leaks() {
        const PUBLISHES: u64 = 500;
        const READERS: usize = 4;
        let drops = Arc::new(AtomicUsize::new(0));
        // One slot + several readers: the hunt regularly loses and the slow
        // path takes over under real contention.
        let cell = Arc::new(EpochCell::with_slots(
            Arc::new(Tally { value: 0, drops: drops.clone() }),
            1,
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let cell = cell.clone();
                let stop = stop.clone();
                thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(SeqCst) {
                        let v = cell.load();
                        assert!(v.value >= last, "monotone publishes");
                        last = v.value;
                    }
                })
            })
            .collect();
        for v in 1..=PUBLISHES {
            cell.publish(Arc::new(Tally { value: v, drops: drops.clone() }));
        }
        stop.store(true, SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.load().value, PUBLISHES);
        drop(cell);
        assert_eq!(drops.load(SeqCst), PUBLISHES as usize + 1);
    }

    #[test]
    fn hammer_concurrent_readers_see_monotone_values_and_nothing_leaks() {
        const PUBLISHES: u64 = 2_000;
        const READERS: usize = 6;

        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(EpochCell::new(Arc::new(Tally {
            value: 0,
            drops: drops.clone(),
        })));
        let stop = Arc::new(AtomicBool::new(false));

        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let cell = cell.clone();
                let stop = stop.clone();
                thread::spawn(move || {
                    let mut last = 0u64;
                    let mut seen = 0u64;
                    while !stop.load(SeqCst) {
                        let v = cell.load();
                        assert!(
                            v.value >= last,
                            "publication went backwards: {} after {}",
                            v.value,
                            last
                        );
                        last = v.value;
                        seen += 1;
                    }
                    seen
                })
            })
            .collect();

        let writer = {
            let cell = cell.clone();
            let drops = drops.clone();
            thread::spawn(move || {
                for v in 1..=PUBLISHES {
                    cell.publish(Arc::new(Tally { value: v, drops: drops.clone() }));
                }
            })
        };
        writer.join().unwrap();
        stop.store(true, SeqCst);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader made progress");
        }

        assert_eq!(cell.load().value, PUBLISHES);
        assert_eq!(cell.epoch(), PUBLISHES);
        drop(cell);
        // Every published value (initial + PUBLISHES) has been reclaimed.
        assert_eq!(drops.load(SeqCst), PUBLISHES as usize + 1);
    }

    #[test]
    fn pinned_reader_keeps_its_value_alive_across_publishes() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = EpochCell::new(Arc::new(Tally { value: 0, drops: drops.clone() }));
        let held = cell.load();
        for v in 1..=3 {
            cell.publish(Arc::new(Tally { value: v, drops: drops.clone() }));
        }
        // The held clone owns its own strong count, so reclamation of the
        // displaced values cannot touch it.
        assert_eq!(held.value, 0);
        assert_eq!(cell.load().value, 3);
    }
}
