//! Lock-free epoch-based snapshot publication.
//!
//! [`EpochCell`] is the primitive behind "readers are never blocked by an
//! in-flight solve": a writer thread *publishes* each new fixpoint by
//! swapping an atomic pointer and bumping an epoch counter, while any number
//! of reader threads *load* the current value without ever taking a lock —
//! the reader fast path is one CAS on a private pin slot plus three atomic
//! loads, all wait-free with respect to the writer.
//!
//! # Protocol
//!
//! The cell owns the current value through a raw pointer produced by
//! [`Arc::into_raw`]. Readers pin the epoch they observed into one of
//! [`READER_SLOTS`] slots (claimed by CAS from `IDLE`), re-validate that the
//! epoch did not move, clone the `Arc` out via
//! [`Arc::increment_strong_count`], and release the slot. Writers swap the
//! pointer, record the displaced pointer on a retired list stamped with the
//! pre-publish epoch, bump the epoch, and then reclaim every retired pointer
//! whose stamp is not covered by any pinned slot (a pin at epoch `e` blocks
//! reclamation of pointers retired at epochs `>= e`).
//!
//! # Safety argument
//!
//! A retired pointer `P` stamped `e_r` is freed only when no slot holds a
//! pin `<= e_r`. A reader that obtained `P` from `current` did so while its
//! slot was pinned at some validated epoch `e` with `e <= e_r` (the epoch is
//! monotone and was `e` no later than the pointer load; `P` was retired at
//! `e_r >= e`), so the writer's scan observes the pin and keeps `P` alive
//! until the reader has taken its own strong count and released the slot.
//! Conversely a reader whose pin was invalidated by a concurrent publish
//! re-pins at the newer epoch before loading, so it can never hold a
//! pointer older than its published pin. All atomics use `SeqCst`: the
//! cell's correctness leans on a total order between the writer's
//! swap/bump/scan and the reader's pin/validate/load, and publication is
//! orders of magnitude rarer than the solver work that produces a snapshot,
//! so the fence cost is irrelevant.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Number of concurrent reader pin slots. More simultaneous readers than
/// slots simply retry on the next slot (bounded spinning); 64 is far above
/// any realistic thread count for one published cell.
pub const READER_SLOTS: usize = 64;

/// Slot value meaning "unclaimed".
const IDLE: u64 = u64::MAX;

struct Retired<T> {
    ptr: *const T,
    /// The epoch under which this pointer was still current (the counter
    /// value *before* the publish that displaced it).
    epoch: u64,
}

/// A lock-free publication cell: one writer (or several, serialized by the
/// internal retire list) publishes `Arc<T>` values; many readers load the
/// current value without blocking.
pub struct EpochCell<T> {
    current: AtomicPtr<T>,
    epoch: AtomicU64,
    slots: Box<[AtomicU64]>,
    /// Displaced pointers awaiting a grace period. Only publishers touch
    /// this; readers never take the lock.
    retired: Mutex<Vec<Retired<T>>>,
}

// SAFETY: the cell hands out `Arc<T>` clones across threads, which is sound
// exactly when `T: Send + Sync` (the same bound `Arc` itself requires). The
// raw pointers are only ever created from and returned to `Arc`.
unsafe impl<T: Send + Sync> Send for EpochCell<T> {}
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    /// A cell initially publishing `initial` at epoch 0.
    pub fn new(initial: Arc<T>) -> Self {
        EpochCell {
            current: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
            epoch: AtomicU64::new(0),
            slots: (0..READER_SLOTS).map(|_| AtomicU64::new(IDLE)).collect(),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// The current epoch: 0 at construction, +1 per publish.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Loads the currently published value without blocking: claim a pin
    /// slot, validate, clone the `Arc`, release. Wait-free with respect to
    /// publishers; readers contend only with each other for slots.
    pub fn load(&self) -> Arc<T> {
        let mut i = 0usize;
        loop {
            let slot = &self.slots[i % READER_SLOTS];
            let mut pinned = self.epoch.load(SeqCst);
            if slot.compare_exchange(IDLE, pinned, SeqCst, SeqCst).is_ok() {
                // Chase concurrent publishes until the pin matches the
                // epoch; each iteration raises the pin, so retired pointers
                // older than what we will read stay blocked throughout.
                loop {
                    let now = self.epoch.load(SeqCst);
                    if now == pinned {
                        break;
                    }
                    pinned = now;
                    slot.store(pinned, SeqCst);
                }
                let ptr = self.current.load(SeqCst);
                // SAFETY: `ptr` came from `Arc::into_raw` and our pin (at an
                // epoch <= any epoch it could be retired under) prevents the
                // publisher from releasing its strong count until the slot
                // goes idle below — see the module-level safety argument.
                let value = unsafe {
                    Arc::increment_strong_count(ptr);
                    Arc::from_raw(ptr)
                };
                slot.store(IDLE, SeqCst);
                return value;
            }
            i += 1;
            std::hint::spin_loop();
        }
    }

    /// Publishes `next`, making it visible to all subsequent [`EpochCell::load`]
    /// calls, and reclaims every previously displaced value no reader can
    /// still be pinning. Returns the new epoch.
    pub fn publish(&self, next: Arc<T>) -> u64 {
        let new_ptr = Arc::into_raw(next) as *mut T;
        // The lock serializes publishers; readers never touch it.
        let mut retired = self.retired.lock().unwrap();
        let old = self.current.swap(new_ptr, SeqCst);
        let retire_epoch = self.epoch.fetch_add(1, SeqCst);
        retired.push(Retired { ptr: old, epoch: retire_epoch });
        let slots = &self.slots;
        retired.retain(|r| {
            let pinned = slots.iter().any(|s| {
                let v = s.load(SeqCst);
                v != IDLE && v <= r.epoch
            });
            if !pinned {
                // SAFETY: this is the strong count `Arc::into_raw` leaked
                // when the pointer was published, and no reader can still
                // reach the pointer (no covering pin exists, and `current`
                // no longer holds it).
                unsafe { drop(Arc::from_raw(r.ptr)) };
            }
            pinned
        });
        retire_epoch + 1
    }

    /// Retired values still awaiting a grace period (diagnostics/tests).
    pub fn retired_len(&self) -> usize {
        self.retired.lock().unwrap().len()
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        // `&mut self`: no readers or publishers remain, so every leaked
        // strong count can be reclaimed unconditionally.
        unsafe { drop(Arc::from_raw(self.current.load(SeqCst))) };
        for r in self.retired.get_mut().unwrap().drain(..) {
            unsafe { drop(Arc::from_raw(r.ptr)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    /// Counts drops so leak/double-free bugs show up as plain assertion
    /// failures even without sanitizers.
    struct Tally {
        value: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Drop for Tally {
        fn drop(&mut self) {
            self.drops.fetch_add(1, SeqCst);
        }
    }

    #[test]
    fn load_returns_latest_publish_and_epoch_advances() {
        let cell = EpochCell::new(Arc::new(10u64));
        assert_eq!(*cell.load(), 10);
        assert_eq!(cell.epoch(), 0);
        assert_eq!(cell.publish(Arc::new(11)), 1);
        assert_eq!(*cell.load(), 11);
        assert_eq!(cell.epoch(), 1);
        // Loads are repeatable and independent.
        assert_eq!(*cell.load(), 11);
    }

    #[test]
    fn every_value_is_dropped_exactly_once() {
        let drops = Arc::new(AtomicUsize::new(0));
        let mk = |v| Arc::new(Tally { value: v, drops: drops.clone() });
        let held;
        {
            let cell = EpochCell::new(mk(0));
            for v in 1..=5 {
                cell.publish(mk(v));
            }
            held = cell.load();
            assert_eq!(held.value, 5);
            // With no pinned readers, everything but the current value has
            // been reclaimed during publishes.
            assert_eq!(cell.retired_len(), 0);
            assert_eq!(drops.load(SeqCst), 5);
        }
        // Dropping the cell releases the published count; our clone still
        // keeps the value alive.
        assert_eq!(drops.load(SeqCst), 5);
        drop(held);
        assert_eq!(drops.load(SeqCst), 6);
    }

    #[test]
    fn hammer_concurrent_readers_see_monotone_values_and_nothing_leaks() {
        const PUBLISHES: u64 = 2_000;
        const READERS: usize = 6;

        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(EpochCell::new(Arc::new(Tally {
            value: 0,
            drops: drops.clone(),
        })));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let cell = cell.clone();
                let stop = stop.clone();
                thread::spawn(move || {
                    let mut last = 0u64;
                    let mut seen = 0u64;
                    while !stop.load(SeqCst) {
                        let v = cell.load();
                        assert!(
                            v.value >= last,
                            "publication went backwards: {} after {}",
                            v.value,
                            last
                        );
                        last = v.value;
                        seen += 1;
                    }
                    seen
                })
            })
            .collect();

        let writer = {
            let cell = cell.clone();
            let drops = drops.clone();
            thread::spawn(move || {
                for v in 1..=PUBLISHES {
                    cell.publish(Arc::new(Tally { value: v, drops: drops.clone() }));
                }
            })
        };
        writer.join().unwrap();
        stop.store(true, SeqCst);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader made progress");
        }

        assert_eq!(cell.load().value, PUBLISHES);
        assert_eq!(cell.epoch(), PUBLISHES);
        drop(cell);
        // Every published value (initial + PUBLISHES) has been reclaimed.
        assert_eq!(drops.load(SeqCst), PUBLISHES as usize + 1);
    }

    #[test]
    fn pinned_reader_keeps_its_value_alive_across_publishes() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = EpochCell::new(Arc::new(Tally { value: 0, drops: drops.clone() }));
        let held = cell.load();
        for v in 1..=3 {
            cell.publish(Arc::new(Tally { value: v, drops: drops.clone() }));
        }
        // The held clone owns its own strong count, so reclamation of the
        // displaced values cannot touch it.
        assert_eq!(held.value, 0);
        assert_eq!(cell.load().value, 3);
    }
}
