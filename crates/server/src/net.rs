//! The TCP front end: one thread per connection, one response line per
//! request line, all state behind the [`Registry`].

use crate::protocol::{parse_request, Query, Request};
use crate::registry::{Registry, ServerConfig, ServerError, SessionHandle};
use skipflow_core::{AnalysisConfig, CallGraphQuery, Completeness, MethodEdit, SchedulerKind};
use skipflow_ir::{frontend, MethodId, Program};
use skipflow_modelcheck::sync::atomic::{AtomicBool, Ordering::SeqCst};
use skipflow_modelcheck::sync::Arc;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// How long a `flush` request waits before answering `err timeout`.
const FLUSH_TIMEOUT: Duration = Duration::from_secs(60);

/// Upper bound on one request line. Longer lines are answered with
/// `err proto:` (and the oversized tail discarded) instead of buffering
/// attacker-controlled amounts of memory; the connection stays usable.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// A bound-but-not-yet-running server. [`Server::run`] blocks until a
/// client sends `shutdown`.
pub struct Server {
    registry: Arc<Registry>,
    listener: TcpListener,
    running: Arc<AtomicBool>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port, then read it back
    /// with [`Server::local_addr`]).
    pub fn bind(addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        Ok(Server {
            registry: Arc::new(Registry::new(cfg)),
            listener: TcpListener::bind(addr)?,
            running: Arc::new(AtomicBool::new(true)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The registry behind this server (for in-process callers and tests).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Accepts connections until a client sends `shutdown`, then stops every
    /// session and returns. Each connection gets its own thread; queries on
    /// one connection are never blocked by solves triggered on another.
    pub fn run(self) -> io::Result<()> {
        let addr = self.local_addr()?;
        while self.running.load(SeqCst) {
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) => {
                    if self.running.load(SeqCst) {
                        return Err(e);
                    }
                    break;
                }
            };
            if !self.running.load(SeqCst) {
                break;
            }
            let registry = self.registry.clone();
            let running = self.running.clone();
            let listener_addr = addr;
            std::thread::spawn(move || {
                let _ = serve_connection(stream, &registry, &running, listener_addr);
            });
        }
        self.registry.shutdown_all();
        Ok(())
    }
}

fn serve_connection(
    stream: TcpStream,
    registry: &Registry,
    running: &AtomicBool,
    listener_addr: SocketAddr,
) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::with_capacity(256);
    loop {
        buf.clear();
        // Read one line with a hard cap: `read_until` on an unbounded
        // reader would buffer an arbitrarily long malicious line in memory
        // before we ever saw it.
        let n = reader
            .by_ref()
            .take((MAX_LINE_BYTES + 1) as u64)
            .read_until(b'\n', &mut buf)?;
        if n == 0 {
            // Clean EOF (an unterminated final line was handled on the
            // previous iteration).
            return Ok(());
        }
        if buf.last() == Some(&b'\n') {
            buf.pop();
        } else if buf.len() > MAX_LINE_BYTES {
            // Oversized request: skip to the end of the line so the next
            // request parses from a clean boundary, answer structurally,
            // and keep serving.
            discard_to_newline(&mut reader)?;
            writer.write_all(
                format!("err proto: request line exceeds {MAX_LINE_BYTES} bytes\n").as_bytes(),
            )?;
            writer.flush()?;
            continue;
        }
        // else: truncated input (EOF without a newline) — serve what
        // arrived; the next iteration returns on the EOF.
        let line = match std::str::from_utf8(&buf) {
            Ok(line) => line,
            Err(_) => {
                writer.write_all(b"err proto: request is not valid UTF-8\n")?;
                writer.flush()?;
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(line) {
            Err(msg) => format!("err proto: {msg}"),
            Ok(Request::Shutdown) => {
                writer.write_all(b"ok bye\n")?;
                writer.flush()?;
                running.store(false, SeqCst);
                // Unblock the accept loop so `run` observes the flag.
                let _ = TcpStream::connect(listener_addr);
                return Ok(());
            }
            Ok(req) => handle_request(registry, req),
        };
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

/// Consumes input through the next `\n` (or EOF) without buffering it —
/// the tail of an oversized line is discarded in `fill_buf`-sized chunks.
fn discard_to_newline<R: BufRead>(reader: &mut R) -> io::Result<()> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(());
            }
            None => {
                let len = available.len();
                reader.consume(len);
            }
        }
    }
}

/// Executes one parsed request and renders the response line. Split from the
/// socket loop so in-process tests and the example can drive the protocol
/// without a TCP round trip.
pub fn handle_request(registry: &Registry, req: Request) -> String {
    match execute(registry, req) {
        Ok(line) => line,
        Err(e) => render_error(&e),
    }
}

fn render_error(e: &ServerError) -> String {
    let kind = match e {
        ServerError::UnknownSession(_) => "unknown-session",
        ServerError::DuplicateSession(_) => "duplicate-session",
        ServerError::Overloaded(_) => "overloaded",
        ServerError::InvalidRoot { .. } => "invalid-root",
        ServerError::SessionFailed(_) => "failed",
        ServerError::Timeout(_) => "timeout",
        ServerError::Analysis(_) => "analysis",
    };
    format!("err {kind}: {e}")
}

/// The `[partial]` tag every response answering from a checkpoint carries.
fn completeness_tag(c: Completeness) -> &'static str {
    match c {
        Completeness::Complete => "",
        Completeness::Partial => " [partial]",
    }
}

fn execute(registry: &Registry, req: Request) -> Result<String, ServerError> {
    match req {
        Request::Ping => Ok("ok pong".to_string()),
        // Handled in the connection loop; answered here only for in-process
        // callers that have no socket to shut down.
        Request::Shutdown => Ok("ok bye".to_string()),
        Request::Sessions => {
            let names = registry.session_names();
            Ok(format!("ok sessions={} {}", names.len(), names.join(" ")).trim_end().to_string())
        }
        Request::Stats { session: None } => {
            let s = registry.stats();
            Ok(format!(
                "ok sessions_live={} sessions_opened={} sessions_evicted={} \
                 epochs_published={} queries_served={} batches={} batched_roots={} \
                 sheds={} memory_bytes={} memory_budget_bytes={}",
                s.sessions_live,
                s.sessions_opened,
                s.sessions_evicted,
                s.epochs_published,
                s.queries_served,
                s.batches,
                s.batched_roots,
                s.sheds,
                s.memory_bytes,
                s.memory_budget_bytes,
            ))
        }
        Request::Stats { session: Some(name) } => {
            let s = registry.session_stats(&name)?;
            let mut line = format!(
                "ok session={} epoch={} roots={} queued={} memory_bytes={} \
                 steps={} flows={} solves={} batches={} batched_roots={} \
                 epochs_published={} partial_epochs={} queries={} sheds={} \
                 scheduler_flips={} order_repairs={} interrupts={} resumed={} worker_panics={} \
                 retractions={} edits={} invalidated_flows={} rederive_steps={}",
                s.name,
                s.epoch,
                s.roots_covered,
                s.queued_roots,
                s.memory_bytes,
                s.solve.steps,
                s.solve.flows,
                s.solve.solves,
                s.batches,
                s.batched_roots,
                s.epochs_published,
                s.partial_epochs,
                s.queries_served,
                s.sheds,
                s.solve.scheduler.flips,
                s.solve.scheduler.order_repairs,
                s.solve.interrupt.interrupts,
                s.solve.interrupt.resumed_after_interrupt,
                s.solve.interrupt.worker_panics,
                s.solve.invalidation.retractions,
                s.solve.invalidation.edits,
                s.solve.invalidation.invalidated_flows,
                s.solve.invalidation.rederive_steps,
            );
            if let Some(msg) = &s.failed {
                line.push_str(&format!(" failed=\"{msg}\""));
            }
            line.push_str(completeness_tag(s.completeness));
            Ok(line)
        }
        Request::Open { session, source, opts } => {
            // Refuse duplicate names before paying for source loading; the
            // registry re-checks under its lock when actually inserting.
            if registry.contains(&session) {
                return Err(ServerError::DuplicateSession(session));
            }
            let (program, config) = load_source(&source)?;
            let config = apply_opts(config, &opts)?;
            let handle = registry.open(&session, Arc::new(program), config)?;
            Ok(format!(
                "ok opened {} methods={} epoch=0",
                session,
                handle.program().method_count()
            ))
        }
        Request::Roots { session, roots } => {
            let handle = registry.get(&session)?;
            let ids = roots
                .iter()
                .map(|spec| resolve_method(handle.program(), spec))
                .collect::<Result<Vec<MethodId>, ServerError>>()?;
            let n = registry.add_roots(&session, ids)?;
            Ok(format!("ok queued {n} epoch={}", handle.epoch()))
        }
        Request::Retract { session, roots } => {
            let handle = registry.get(&session)?;
            let ids = roots
                .iter()
                .map(|spec| resolve_method(handle.program(), spec))
                .collect::<Result<Vec<MethodId>, ServerError>>()?;
            let n = registry.retract_roots(&session, ids)?;
            Ok(format!("ok queued-retract {n} epoch={}", handle.epoch()))
        }
        Request::Edit { session, method, edit } => {
            let handle = registry.get(&session)?;
            let m = resolve_method(handle.program(), &method)?;
            registry.edit(&session, m, edit)?;
            let verb = match edit {
                MethodEdit::DisableBody => "disable",
                MethodEdit::RestoreBody => "restore",
            };
            Ok(format!("ok queued-edit {verb} m{} epoch={}", m.index(), handle.epoch()))
        }
        Request::Flush { session } => {
            let epoch = registry.flush(&session, FLUSH_TIMEOUT)?;
            Ok(format!(
                "ok flushed epoch={} roots={}{}",
                epoch.epoch,
                epoch.roots.len(),
                completeness_tag(epoch.snapshot.completeness())
            ))
        }
        Request::Cancel { session } => {
            registry.cancel(&session)?;
            Ok("ok cancelled".to_string())
        }
        Request::Evict { session } => {
            registry.evict(&session)?;
            Ok("ok evicted".to_string())
        }
        Request::Query { session, query } => {
            let handle = registry.get(&session)?;
            let epoch = handle.published();
            let snapshot = &epoch.snapshot;
            let tag = completeness_tag(snapshot.completeness());
            let e = epoch.epoch;
            let answer = match query {
                Query::Reachable(spec) => {
                    let m = resolve_method(handle.program(), &spec)?;
                    format!("{}", snapshot.is_reachable(m))
                }
                Query::ReachableCount => format!("{}", snapshot.reachable_count()),
                Query::CallEdges => format!("{}", snapshot.call_edge_count()),
                Query::PolyCalls => format!("{}", snapshot.poly_call_count()),
                Query::Completeness => match snapshot.completeness() {
                    Completeness::Complete => "complete".to_string(),
                    Completeness::Partial => "partial".to_string(),
                },
                Query::Epoch => format!("{e}"),
            };
            Ok(format!("ok {answer} epoch={e}{tag}"))
        }
    }
}

/// Resolves `Cls.m` labels and `#<id>` raw indices against a program.
fn resolve_method(program: &Program, spec: &str) -> Result<MethodId, ServerError> {
    if let Some(idx) = spec.strip_prefix('#') {
        let idx: usize = idx
            .parse()
            .map_err(|_| ServerError::Analysis(format!("malformed method index `{spec}`")))?;
        let m = MethodId::from_index(idx);
        if idx >= program.method_count() {
            return Err(ServerError::InvalidRoot { method: m, method_count: program.method_count() });
        }
        return Ok(m);
    }
    let (cls, name) = spec
        .split_once('.')
        .ok_or_else(|| ServerError::Analysis(format!("root `{spec}` must be Cls.method or #id")))?;
    let c = program
        .type_by_name(cls)
        .ok_or_else(|| ServerError::Analysis(format!("unknown class `{cls}`")))?;
    program
        .method_by_name(c, name)
        .ok_or_else(|| ServerError::Analysis(format!("unknown method `{spec}`")))
}

/// Loads `synth:<benchmark>` (a generated suite program, reflective roots
/// pre-wired into the config) or a filesystem path (`SFBC` bytecode or
/// `.sf` source).
fn load_source(source: &str) -> Result<(Program, AnalysisConfig), ServerError> {
    if let Some(name) = source.strip_prefix("synth:") {
        let spec = skipflow_synth::suites::by_name(name).ok_or_else(|| {
            ServerError::Analysis(format!("unknown synth benchmark `{name}`"))
        })?;
        let bench = skipflow_synth::build_benchmark(&spec);
        let config = AnalysisConfig::skipflow().with_reflective_roots(bench.reflective_roots);
        return Ok((bench.program, config));
    }
    let bytes = std::fs::read(source)
        .map_err(|e| ServerError::Analysis(format!("cannot read {source}: {e}")))?;
    let program = if bytes.starts_with(b"SFBC") {
        skipflow_ir::encode::decode(&bytes)
            .map_err(|e| ServerError::Analysis(format!("{source}: {e}")))?
    } else {
        let src = String::from_utf8(bytes)
            .map_err(|_| ServerError::Analysis(format!("{source}: not UTF-8 source")))?;
        frontend::compile(&src).map_err(|e| ServerError::Analysis(format!("{source}: {e}")))?
    };
    Ok((program, AnalysisConfig::skipflow()))
}

fn apply_opts(
    config: AnalysisConfig,
    opts: &[(String, String)],
) -> Result<AnalysisConfig, ServerError> {
    let mut config = config;
    for (key, value) in opts {
        config = match key.as_str() {
            "scheduler" => {
                let kind = match value.as_str() {
                    "fifo" => SchedulerKind::Fifo,
                    "scc" => SchedulerKind::SccPriority,
                    "adaptive" => SchedulerKind::Adaptive,
                    other => {
                        return Err(ServerError::Analysis(format!(
                            "unknown scheduler `{other}` (fifo|scc|adaptive)"
                        )))
                    }
                };
                config.with_scheduler(kind)
            }
            "steps" => {
                let n: u64 = value.parse().map_err(|_| {
                    ServerError::Analysis(format!("malformed steps budget `{value}`"))
                })?;
                config.with_step_budget(n)
            }
            "ms" => {
                let n: u64 = value.parse().map_err(|_| {
                    ServerError::Analysis(format!("malformed ms budget `{value}`"))
                })?;
                config.with_wall_budget(Duration::from_millis(n))
            }
            other => {
                return Err(ServerError::Analysis(format!("unknown option `{other}`")));
            }
        };
    }
    Ok(config)
}

/// A blocking line-oriented client for tests, the bench harness, and the
/// example: sends one request, reads one response.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: &SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { writer, reader: BufReader::new(stream) })
    }

    /// Sends one request line and returns the response line.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        self.reader.read_line(&mut response)?;
        Ok(response.trim_end().to_string())
    }
}

/// Convenience for in-process benchmarking: opens a handle-level view
/// alongside the protocol surface.
pub fn session_handle(registry: &Registry, name: &str) -> Result<Arc<SessionHandle>, ServerError> {
    registry.get(name)
}
