//! The serving stress test: reader threads query published snapshots while
//! the writer solves coalesced root batches and other sessions are opened
//! and evicted, across FIFO × SCC × Adaptive schedulers.
//!
//! The correctness contract checked here is the one the server's epoch
//! publication promises:
//!
//! * every published `Complete` epoch is **bit-identical** to a fresh solve
//!   of exactly the configuration it covers — its roots under its mask (the
//!   checkpoint invariant, observed through the publication seam; the
//!   retraction and edit streams make successive epochs non-monotone);
//! * every published `Partial` epoch (budget/cancel checkpoint) is a sound
//!   under-approximation of that fresh solve;
//! * epochs observed by concurrent readers are monotone — publication never
//!   goes backwards, and readers are never handed a torn snapshot.

use skipflow_core::{analyze, AnalysisConfig, AnalysisResult, Completeness, SchedulerKind};
use skipflow_ir::{Program, TypeId};
use skipflow_server::{PublishedEpoch, Registry, ServerConfig};
use skipflow_synth::{build_benchmark, pick_spread_roots, suites};
use skipflow_modelcheck::sync::atomic::{AtomicBool, Ordering::SeqCst};
use skipflow_modelcheck::sync::{Arc, Mutex};
use std::collections::BTreeMap;
use std::thread;
use std::time::Duration;

/// Full observable comparison of two analysis results (the same contract as
/// the workspace-level differential tests): reachable set, instantiated
/// types, per-method value states, liveness, per-statement states and
/// enablement, linked call targets, and the counter metrics.
fn assert_results_identical(program: &Program, a: &AnalysisResult, b: &AnalysisResult, label: &str) {
    assert_eq!(a.reachable_methods(), b.reachable_methods(), "{label}: reachable sets differ");
    for t in 0..program.type_count() {
        let t = TypeId::from_index(t);
        assert_eq!(a.is_instantiated(t), b.is_instantiated(t), "{label}: instantiated({t:?}) differs");
    }
    for &m in a.reachable_methods() {
        let md = program.method(m);
        for i in 0..md.param_count() {
            assert_eq!(
                a.param_state(m, i),
                b.param_state(m, i),
                "{label}: param state {}#{i} differs",
                program.method_label(m)
            );
        }
        assert_eq!(
            a.return_state(m),
            b.return_state(m),
            "{label}: return state of {} differs",
            program.method_label(m)
        );
        assert_eq!(
            a.live_blocks(m),
            b.live_blocks(m),
            "{label}: liveness of {} differs",
            program.method_label(m)
        );
        if let Some(body) = &md.body {
            for (bi, block) in body.iter_blocks() {
                for si in 0..block.stmts.len() {
                    assert_eq!(
                        a.stmt_state(m, bi, si),
                        b.stmt_state(m, bi, si),
                        "{label}: stmt state {}/{bi:?}/{si} differs",
                        program.method_label(m)
                    );
                    assert_eq!(
                        a.stmt_enabled(m, bi, si),
                        b.stmt_enabled(m, bi, si),
                        "{label}: stmt enablement {}/{bi:?}/{si} differs",
                        program.method_label(m)
                    );
                }
            }
        }
        let sites_a = a.call_sites(m);
        let sites_b = b.call_sites(m);
        assert_eq!(sites_a.len(), sites_b.len(), "{label}: site counts differ");
        for (sa, sb) in sites_a.iter().zip(sites_b.iter()) {
            assert_eq!(sa.enabled, sb.enabled, "{label}: site enablement differs");
            let mut ta = sa.targets.clone();
            let mut tb = sb.targets.clone();
            ta.sort_unstable();
            tb.sort_unstable();
            assert_eq!(ta, tb, "{label}: linked targets differ in {}", program.method_label(m));
        }
    }
    assert_eq!(a.metrics(program), b.metrics(program), "{label}: metrics differ");
}

/// A published epoch is sound w.r.t. the fresh fixpoint over its roots.
fn assert_partial_refines(program: &Program, partial: &AnalysisResult, full: &AnalysisResult, label: &str) {
    assert!(
        partial.reachable_methods().is_subset(full.reachable_methods()),
        "{label}: partial epoch reaches methods the fixpoint does not"
    );
    for t in 0..program.type_count() {
        let t = TypeId::from_index(t);
        if partial.is_instantiated(t) {
            assert!(full.is_instantiated(t), "{label}: partial epoch instantiates {t:?}, fixpoint does not");
        }
    }
}

const CHURN_SRC: &str = "
    class Util { static method id(x: int): int { return x; } }
    class Main { static method main(): void { Util.id(1); return; } }
";

fn stress(scheduler: SchedulerKind, batch_step_budget: Option<u64>) {
    let spec = suites::by_name("lusearch").expect("suite benchmark");
    let bench = build_benchmark(&spec);
    let mut to_feed = bench.roots.clone();
    to_feed.extend(pick_spread_roots(&bench.program, &bench.roots, 32));
    // Concrete non-root methods for the edit stream (disabled/restored
    // while roots are still being fed).
    let edit_victims = pick_spread_roots(&bench.program, &to_feed, 2);
    assert_eq!(edit_victims.len(), 2, "need two editable methods");
    let program = Arc::new(bench.program);
    let config = AnalysisConfig::skipflow()
        .with_scheduler(scheduler)
        .with_reflective_roots(bench.reflective_roots.clone());

    let registry = Arc::new(Registry::new(ServerConfig {
        batch_step_budget,
        ..ServerConfig::default()
    }));
    let handle = registry.open("main", program.clone(), config.clone()).expect("open");

    // Readers: record every distinct epoch they observe and assert epochs
    // never go backwards while queries stay answerable mid-solve.
    let stop = Arc::new(AtomicBool::new(false));
    let observed: Arc<Mutex<BTreeMap<u64, Arc<PublishedEpoch>>>> =
        Arc::new(Mutex::new(BTreeMap::new()));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let handle = handle.clone();
            let stop = stop.clone();
            let observed = observed.clone();
            thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(SeqCst) {
                    let ep = handle.published();
                    assert!(ep.epoch >= last, "epoch went backwards: {} after {last}", ep.epoch);
                    last = ep.epoch;
                    // The snapshot must be queryable regardless of what the
                    // writer is doing right now.
                    let view = ep.snapshot.view();
                    assert_eq!(view.reachable_methods().len(), ep.snapshot.reachable_methods().len());
                    let _ = view.poly_call_sites();
                    observed.lock().unwrap().entry(ep.epoch).or_insert(ep);
                    thread::yield_now();
                }
            })
        })
        .collect();

    // Churn: concurrently open, solve, and evict an unrelated session so
    // registry mutations overlap the main session's solves and queries.
    let churn = {
        let registry = registry.clone();
        thread::spawn(move || {
            let churn_program =
                Arc::new(skipflow_ir::frontend::compile(CHURN_SRC).expect("churn source"));
            for i in 0..5 {
                let name = format!("victim-{i}");
                let h = registry
                    .open(&name, churn_program.clone(), AnalysisConfig::skipflow())
                    .expect("open churn session");
                let main = h.program().iter_methods().next().expect("method");
                registry.add_roots(&name, vec![main]).expect("churn roots");
                let _ = registry.flush(&name, Duration::from_secs(10));
                registry.evict(&name).expect("evict churn session");
            }
        })
    };

    // Writer-facing load: feed roots in small bursts (coalesced by the
    // writer into batches), with flushes interleaved so settled epochs are
    // reliably observed; exercise cancel once mid-stream, plus a
    // non-monotone stream of retractions and method edits riding along.
    let mut fed: Vec<skipflow_ir::MethodId> = Vec::new();
    for (i, chunk) in to_feed.chunks(4).enumerate() {
        fed.extend_from_slice(chunk);
        registry.add_roots("main", chunk.to_vec()).expect("roots");
        if i == 2 {
            // Retract the very first fed root: later epochs cover fewer
            // roots than earlier ones — publication is non-monotone.
            let retracted = fed.remove(0);
            registry.retract_roots("main", vec![retracted]).expect("retract");
        }
        if i == 3 {
            registry.cancel("main").expect("cancel");
        }
        if i == 4 {
            registry
                .edit("main", edit_victims[0], skipflow_core::MethodEdit::DisableBody)
                .expect("disable edit");
        }
        if i == 6 {
            registry
                .edit("main", edit_victims[0], skipflow_core::MethodEdit::RestoreBody)
                .expect("restore edit");
            // The second victim stays disabled through the final epoch.
            registry
                .edit("main", edit_victims[1], skipflow_core::MethodEdit::DisableBody)
                .expect("disable edit 2");
        }
        if i % 3 == 2 {
            let ep = registry.flush("main", Duration::from_secs(30)).expect("flush");
            assert!(ep.is_complete(), "flushed epoch must be complete");
        }
        thread::sleep(Duration::from_millis(2));
    }
    let final_epoch = registry.flush("main", Duration::from_secs(30)).expect("final flush");
    assert!(final_epoch.is_complete());
    assert_eq!(final_epoch.roots.len(), fed.len(), "final epoch covers every surviving root");
    assert_eq!(
        final_epoch.masked,
        vec![edit_victims[1]],
        "final epoch carries the still-disabled body"
    );

    stop.store(true, SeqCst);
    for r in readers {
        r.join().expect("reader");
    }
    churn.join().expect("churn");
    observed.lock().unwrap().entry(final_epoch.epoch).or_insert(final_epoch);

    let stats = registry.stats();
    assert!(stats.sessions_evicted >= 5, "churn sessions were evicted");
    assert!(stats.epochs_published >= 1);
    assert!(stats.queries_served > 0);
    registry.shutdown_all();

    // Verify every observed epoch against a fresh solve of exactly the
    // configuration it covered — its roots *and* its masked bodies: each
    // epoch is the fixpoint of the edit prefix it absorbed, nothing more.
    // The verification config carries no budgets: `Complete` epochs must be
    // bit-identical, `Partial` epochs must be sound under-approximations.
    let observed = Arc::try_unwrap(observed).expect("readers joined").into_inner().unwrap();
    let mut complete_epochs = 0u64;
    let mut partial_epochs = 0u64;
    for (n, ep) in &observed {
        if *n == 0 {
            // Epoch 0 is the empty pre-solve publication.
            assert!(ep.roots.is_empty());
            continue;
        }
        let oracle_config = config.clone().with_masked_methods(ep.masked.iter().copied());
        let fresh = analyze(&program, &ep.roots, &oracle_config);
        let label = format!("{scheduler:?} epoch {n}");
        match ep.snapshot.completeness() {
            Completeness::Complete => {
                complete_epochs += 1;
                assert_results_identical(&program, &fresh, ep.snapshot.result(), &label);
            }
            Completeness::Partial => {
                partial_epochs += 1;
                assert_partial_refines(&program, ep.snapshot.result(), &fresh, &label);
            }
        }
    }
    assert!(complete_epochs >= 1, "at least the settled epochs must be complete");
    if batch_step_budget.is_some() {
        assert!(
            partial_epochs >= 1,
            "a tight step budget must surface partial epochs (saw {complete_epochs} complete)"
        );
    }
}

#[test]
fn stress_fifo() {
    stress(SchedulerKind::Fifo, None);
}

#[test]
fn stress_scc() {
    stress(SchedulerKind::SccPriority, None);
}

#[test]
fn stress_adaptive() {
    stress(SchedulerKind::Adaptive, None);
}

/// A tight per-batch step budget forces the writer through many
/// partial-epoch publications on the way to each settled fixpoint; the
/// partial epochs must refine, and the settled ones stay bit-identical.
#[test]
fn stress_adaptive_with_step_budget() {
    stress(SchedulerKind::Adaptive, Some(96));
}
