//! Exhaustive interleaving exploration of the server's concurrency layer:
//! the lock-free [`EpochCell`] publication protocol and the
//! [`SessionGate`] writer handshake, driven by the `skipflow-modelcheck`
//! explorer (`--features model-check`).
//!
//! Each scenario is run under *every* schedule up to the preemption bound;
//! a pass means no schedule produced a leak, use-after-free, double free,
//! torn value, deadlock, or assertion failure. One scenario deliberately
//! uses the seeded broken reclaimer
//! ([`EpochCell::publish_skipping_pin_check`]) and must FAIL — proving the
//! explorer would catch a real regression in the pin-scan, not just bless
//! whatever the implementation does.
//!
//! Scenario sizes are deliberately small (1–2 pin slots, 1–2 readers, 1–3
//! publishes): every atomic access is an interleaving point, so state space
//! grows exponentially in operation count, and small shapes already cover
//! the protocol's races (pin-vs-swap, validate-vs-bump, scan-vs-clone).
#![cfg(feature = "model-check")]

use skipflow_modelcheck::sync::{Arc, Mutex};
use skipflow_modelcheck::{explore, thread, try_explore, Options, Report};
use skipflow_server::gate::{SessionGate, Settle, WriterStep};
use skipflow_server::publish::EpochCell;
use std::time::Duration;

/// A long-enough flush deadline that no model execution ever times out (a
/// timeout would make assertions schedule-dependent).
const FOREVER: Duration = Duration::from_secs(3600);

// ---------------------------------------------------------------------------
// EpochCell
// ---------------------------------------------------------------------------

/// The canonical race: a reader pins and clones while the writer swaps,
/// bumps, and scans. Parameterized so the volume test below can rerun the
/// same shape at higher preemption bounds.
fn pin_vs_publish(readers: usize, publishes: u64, slots: usize, opts: Options) -> Report {
    explore(opts, move || {
        let cell = Arc::new(EpochCell::with_slots(Arc::new(0u64), slots));
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let cell = cell.clone();
                thread::spawn(move || {
                    let v = cell.load();
                    // The loaded value is some published value, and the
                    // clone stays valid regardless of later reclamation.
                    assert!(*v <= publishes, "torn or stale beyond last publish: {}", *v);
                    *v
                })
            })
            .collect();
        for n in 1..=publishes {
            cell.publish(Arc::new(n));
        }
        for h in handles {
            let seen = h.join().unwrap();
            assert!(seen <= publishes);
        }
        assert_eq!(*cell.load(), publishes, "final load sees the last publish");
    })
}

#[test]
fn writer_publishes_during_reader_pin_is_safe_under_every_schedule() {
    let report = pin_vs_publish(1, 1, 1, Options::default());
    assert!(report.schedules > 10, "expected real exploration, got {report}");
    assert!(report.branch_points > 0);
}

#[test]
fn two_readers_one_slot_contend_safely() {
    // With one slot, the second reader regularly loses the hunt and takes
    // the lock-based slow path — both paths explored against a publish.
    let report = pin_vs_publish(2, 1, 1, Options::default());
    assert!(report.schedules > 10, "{report}");
}

#[test]
fn epoch_is_monotone_and_values_never_go_backwards() {
    explore(Options::default(), || {
        let cell = Arc::new(EpochCell::with_slots(Arc::new(0u64), 1));
        let reader = {
            let cell = cell.clone();
            thread::spawn(move || {
                let e1 = cell.epoch();
                let v1 = *cell.load();
                let e2 = cell.epoch();
                let v2 = *cell.load();
                assert!(e2 >= e1, "epoch went backwards: {e2} < {e1}");
                assert!(v2 >= v1, "published value went backwards: {v2} < {v1}");
                // A load pins at least the epoch it returns a value for.
                assert!(v1 >= e1, "value {v1} older than pinned epoch {e1}");
            })
        };
        cell.publish(Arc::new(1));
        cell.publish(Arc::new(2));
        reader.join().unwrap();
        assert_eq!(cell.epoch(), 2);
    });
}

#[test]
fn stale_pin_blocks_reclamation_of_the_held_value() {
    explore(Options::default(), || {
        let cell = Arc::new(EpochCell::with_slots(Arc::new(0u64), 1));
        let reader = {
            let cell = cell.clone();
            thread::spawn(move || {
                let held = cell.load();
                let first = *held;
                // Give the publisher every chance to retire-and-reclaim the
                // value this clone still owns; the shim's quarantine turns a
                // premature free into a reported use-after-free on deref.
                thread::yield_now();
                assert_eq!(*held, first, "held snapshot mutated or reclaimed");
            })
        };
        cell.publish(Arc::new(1));
        cell.publish(Arc::new(2));
        reader.join().unwrap();
    });
}

#[test]
fn slot_exhaustion_falls_back_without_spinning_or_leaking() {
    explore(Options::default(), || {
        // Zero slots: every load is forced onto the lock-based slow path,
        // racing a publisher that holds the same lock.
        let cell = Arc::new(EpochCell::with_slots(Arc::new(0u64), 0));
        let reader = {
            let cell = cell.clone();
            thread::spawn(move || {
                let v = *cell.load();
                assert!(v <= 1);
                v
            })
        };
        cell.publish(Arc::new(1));
        reader.join().unwrap();
        assert!(cell.slow_path_loads() >= 1, "slow path must have been taken");
        assert_eq!(*cell.load(), 1);
    });
}

#[test]
fn evicted_cell_snapshot_stays_queryable_for_its_holder() {
    explore(Options::default(), || {
        // The eviction seam: the reader's snapshot must outlive the cell
        // itself (the registry promises published epochs held by clients
        // stay valid after `evict`). Dropping the last cell handle runs
        // `EpochCell::drop`'s reclamation concurrently with the reader
        // still dereferencing its clone.
        let cell = Arc::new(EpochCell::with_slots(Arc::new(7u64), 1));
        let reader = {
            let cell = cell.clone();
            thread::spawn(move || {
                let snap = cell.load();
                drop(cell); // maybe the last handle — cell reclaims here
                assert_eq!(*snap, 7, "snapshot died with the cell");
            })
        };
        drop(cell); // or here
        reader.join().unwrap();
    });
}

#[test]
fn broken_reclaimer_that_skips_the_pin_scan_is_caught() {
    let failure = try_explore(Options::default(), || {
        let cell = Arc::new(EpochCell::with_slots(Arc::new(0u64), 1));
        let reader = {
            let cell = cell.clone();
            thread::spawn(move || {
                let v = cell.load();
                assert!(*v <= 1);
            })
        };
        // The seeded bug: reclaims every retired pointer without scanning
        // pin slots. Some schedule frees the value between the reader's pin
        // and its clone — which the explorer must observe as use-after-free.
        cell.publish_skipping_pin_check(Arc::new(1));
        reader.join().unwrap();
    })
    .expect_err("the explorer must catch the pin-scan regression");
    assert!(
        failure.message.contains("use-after-free"),
        "wrong failure class: {failure}"
    );
}

/// The acceptance bar from the issue: at least 10^4 distinct schedules
/// across the EpochCell scenarios, all clean. Reruns the pin-vs-publish
/// shape at wider bounds and shapes and sums the exploration reports.
#[test]
fn epoch_cell_scenarios_explore_at_least_ten_thousand_schedules() {
    let mut total = 0u64;
    for (readers, publishes, slots, bound) in [
        (1, 1, 1, None),
        (1, 2, 1, Some(3)),
        (2, 1, 1, Some(3)),
        (2, 1, 2, Some(3)),
        (1, 1, 0, None),
        (2, 2, 1, Some(2)),
    ] {
        let opts = Options { preemption_bound: bound, ..Options::default() };
        let report = pin_vs_publish(readers, publishes, slots, opts);
        total += report.schedules;
    }
    assert!(
        total >= 10_000,
        "expected >= 10^4 schedules across EpochCell scenarios, explored {total}"
    );
}

// ---------------------------------------------------------------------------
// SessionGate
// ---------------------------------------------------------------------------

/// Spawns a writer-loop thread over `gate` that drains batches into the
/// returned log, simulating the registry's writer (solve elided — the
/// handshake is what's under test).
fn spawn_writer(
    gate: &Arc<SessionGate<u32>>,
    drained: &Arc<Mutex<Vec<u32>>>,
) -> thread::JoinHandle<()> {
    let gate = gate.clone();
    let drained = drained.clone();
    thread::spawn(move || loop {
        match gate.next_batch() {
            WriterStep::Shutdown => return,
            WriterStep::Batch(items) => {
                drained.lock().unwrap().extend(items);
                gate.finish_batch(0, None, false);
            }
        }
    })
}

#[test]
fn gate_drains_every_enqueued_item_exactly_once() {
    explore(Options::default(), || {
        let gate = Arc::new(SessionGate::<u32>::new());
        let drained = Arc::new(Mutex::new(Vec::new()));
        let writer = spawn_writer(&gate, &drained);
        let client = {
            let gate = gate.clone();
            thread::spawn(move || gate.enqueue(vec![3]))
        };
        gate.enqueue(vec![1, 2]);
        client.join().unwrap();
        assert_eq!(gate.wait_settled(FOREVER), Settle::Idle);
        gate.signal_shutdown();
        writer.join().unwrap();
        let mut seen = drained.lock().unwrap().clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3], "items lost or duplicated");
    });
}

#[test]
fn gate_cancel_pauses_and_flush_resumes_without_losing_work() {
    explore(Options::default(), || {
        let gate = Arc::new(SessionGate::<u32>::new());
        let drained = Arc::new(Mutex::new(Vec::new()));
        let writer = spawn_writer(&gate, &drained);
        gate.enqueue(vec![1]);
        // Cancel races the writer: the batch may be drained already, mid
        // extraction, or still queued-and-now-paused. In every case the
        // settle below (which un-pauses, per the flush contract) must leave
        // nothing behind.
        let canceller = {
            let gate = gate.clone();
            thread::spawn(move || gate.cancel())
        };
        gate.enqueue(vec![2]);
        canceller.join().unwrap();
        assert_eq!(gate.wait_settled(FOREVER), Settle::Idle);
        assert!(gate.is_idle(), "settled gate must be idle");
        assert_eq!(gate.queued_len(), 0);
        gate.signal_shutdown();
        writer.join().unwrap();
        let mut seen = drained.lock().unwrap().clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![1, 2], "cancel lost or duplicated queued work");
    });
}

#[test]
fn gate_shutdown_during_enqueue_never_hangs_the_writer() {
    explore(Options::default(), || {
        let gate = Arc::new(SessionGate::<u32>::new());
        let drained = Arc::new(Mutex::new(Vec::new()));
        let writer = spawn_writer(&gate, &drained);
        let client = {
            let gate = gate.clone();
            thread::spawn(move || gate.enqueue(vec![1]))
        };
        // Shutdown races the enqueue: the writer must exit either way (a
        // hang here is reported as deadlock by the explorer), and work is
        // allowed to be left queued but never half-drained.
        gate.signal_shutdown();
        client.join().unwrap();
        writer.join().unwrap();
        let seen = drained.lock().unwrap().clone();
        assert!(seen == vec![] || seen == vec![1], "half-drained batch: {seen:?}");
    });
}

#[test]
fn gate_failure_is_sticky_and_observed_by_flush() {
    explore(Options::default(), || {
        let gate = Arc::new(SessionGate::<u32>::new());
        let failer = {
            let gate = gate.clone();
            thread::spawn(move || gate.fail("capacity exhausted".to_string()))
        };
        failer.join().unwrap();
        match gate.wait_settled(FOREVER) {
            Settle::Failed(msg) => assert!(msg.contains("capacity")),
            other => panic!("expected sticky failure, got {other:?}"),
        }
        assert!(gate.failure().is_some());
    });
}
