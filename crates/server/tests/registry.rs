//! Registry behavior: admission control, memory-budget eviction, cancel /
//! flush semantics, and the protocol layer driven in-process.

use skipflow_core::{AnalysisConfig, CallGraphQuery, Completeness};
use skipflow_ir::frontend::compile;
use skipflow_server::{handle_request, parse_request, Registry, ServerConfig, ServerError};
use skipflow_modelcheck::sync::Arc;
use std::time::Duration;

const SRC: &str = "
    class Config { static method flag(): int { return 0; } }
    class App {
      static method used(): void { return; }
      static method dead(): void { return; }
      static method main(): void {
        if (Config.flag()) { App.dead(); } else { App.used(); }
      }
      static method other(): void { App.used(); }
    }
";

fn program() -> Arc<skipflow_ir::Program> {
    Arc::new(compile(SRC).expect("test source"))
}

fn main_root(p: &skipflow_ir::Program) -> skipflow_ir::MethodId {
    let app = p.type_by_name("App").unwrap();
    p.method_by_name(app, "main").unwrap()
}

#[test]
fn open_roots_flush_query_round_trip() {
    let registry = Registry::new(ServerConfig::default());
    let p = program();
    let handle = registry.open("s", p.clone(), AnalysisConfig::skipflow()).unwrap();

    // Epoch 0 is the empty pre-solve publication, tagged partial.
    let ep0 = handle.published();
    assert_eq!(ep0.epoch, 0);
    assert!(ep0.roots.is_empty());
    assert_eq!(ep0.snapshot.completeness(), Completeness::Partial);

    registry.add_roots("s", vec![main_root(&p)]).unwrap();
    let settled = registry.flush("s", Duration::from_secs(10)).unwrap();
    assert!(settled.is_complete());
    assert_eq!(settled.roots, vec![main_root(&p)]);

    // SkipFlow proves the dead branch dead through the published snapshot.
    let app = p.type_by_name("App").unwrap();
    let dead = p.method_by_name(app, "dead").unwrap();
    let used = p.method_by_name(app, "used").unwrap();
    assert!(!settled.snapshot.is_reachable(dead));
    assert!(settled.snapshot.is_reachable(used));
    assert!(handle.epochs_published() >= 1);
}

#[test]
fn duplicate_unknown_and_invalid_root_errors() {
    let registry = Registry::new(ServerConfig::default());
    let p = program();
    registry.open("s", p.clone(), AnalysisConfig::skipflow()).unwrap();
    assert!(matches!(
        registry.open("s", p.clone(), AnalysisConfig::skipflow()),
        Err(ServerError::DuplicateSession(_))
    ));
    assert!(matches!(registry.get("nope"), Err(ServerError::UnknownSession(_))));
    let bogus = skipflow_ir::MethodId::from_index(10_000);
    assert!(matches!(
        registry.add_roots("s", vec![bogus]),
        Err(ServerError::InvalidRoot { .. })
    ));
    assert!(matches!(
        registry.flush("missing", Duration::from_secs(1)),
        Err(ServerError::UnknownSession(_))
    ));
}

#[test]
fn session_cap_and_queue_cap_shed() {
    let registry = Registry::new(ServerConfig {
        max_sessions: 1,
        max_queued_roots: 0,
        ..ServerConfig::default()
    });
    let p = program();
    registry.open("a", p.clone(), AnalysisConfig::skipflow()).unwrap();
    assert!(matches!(
        registry.open("b", p.clone(), AnalysisConfig::skipflow()),
        Err(ServerError::Overloaded(_))
    ));
    // With a zero queue cap every root registration sheds.
    assert!(matches!(
        registry.add_roots("a", vec![main_root(&p)]),
        Err(ServerError::Overloaded(_))
    ));
    assert!(registry.stats().sheds >= 2);
}

#[test]
fn memory_budget_evicts_idle_lru_sessions() {
    // A 1-byte budget guarantees pressure as soon as any session has a
    // non-zero engine estimate.
    let registry = Registry::new(ServerConfig {
        memory_budget_bytes: 1,
        ..ServerConfig::default()
    });
    let p = program();
    registry.open("old", p.clone(), AnalysisConfig::skipflow()).unwrap();
    registry.add_roots("old", vec![main_root(&p)]).unwrap();
    registry.flush("old", Duration::from_secs(10)).unwrap();
    assert!(registry.get("old").unwrap().memory_estimate() > 1);

    // Opening a new session relieves pressure by evicting the idle one.
    registry.open("new", p.clone(), AnalysisConfig::skipflow()).unwrap();
    assert!(
        matches!(registry.get("old"), Err(ServerError::UnknownSession(_))),
        "idle LRU session evicted under memory pressure"
    );
    assert!(registry.stats().sessions_evicted >= 1);

    // Once the surviving session itself exceeds the budget and nothing else
    // is evictable, requests naming it shed instead.
    registry.add_roots("new", vec![main_root(&p)]).unwrap();
    registry.flush("new", Duration::from_secs(10)).unwrap();
    assert!(matches!(
        registry.add_roots("new", vec![main_root(&p)]),
        Err(ServerError::Overloaded(_))
    ));
}

#[test]
fn cancel_pauses_and_flush_resumes_to_complete() {
    let registry = Registry::new(ServerConfig::default());
    let p = program();
    registry.open("s", p.clone(), AnalysisConfig::skipflow()).unwrap();
    registry.add_roots("s", vec![main_root(&p)]).unwrap();
    registry.cancel("s").unwrap();
    // Whatever state the cancel left behind, an explicit flush drains it.
    let settled = registry.flush("s", Duration::from_secs(10)).unwrap();
    assert!(settled.is_complete());
    assert_eq!(settled.snapshot.result().completeness(), Completeness::Complete);
}

#[test]
fn eviction_keeps_published_epochs_valid_for_holders() {
    let registry = Registry::new(ServerConfig::default());
    let p = program();
    let handle = registry.open("s", p.clone(), AnalysisConfig::skipflow()).unwrap();
    registry.add_roots("s", vec![main_root(&p)]).unwrap();
    let settled = registry.flush("s", Duration::from_secs(10)).unwrap();
    let held = handle.published();
    registry.evict("s").unwrap();
    // The registry no longer knows the session, but snapshots already
    // handed out stay fully queryable.
    assert!(registry.get("s").is_err());
    assert_eq!(held.epoch, settled.epoch);
    assert!(held.snapshot.reachable_count() > 0);
}

#[test]
fn protocol_layer_in_process() {
    let registry = Registry::new(ServerConfig::default());
    let dir = std::env::temp_dir().join(format!("skipflow-registry-proto-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let src_path = dir.join("app.sf");
    std::fs::write(&src_path, SRC).unwrap();

    let run = |line: &str| handle_request(&registry, parse_request(line).unwrap());

    assert_eq!(run("ping"), "ok pong");
    let opened = run(&format!("open s {} scheduler=adaptive", src_path.display()));
    assert!(opened.starts_with("ok opened s methods="), "{opened}");
    assert_eq!(run("sessions"), "ok sessions=1 s");

    // Before any roots: epoch 0, partial.
    let q = run("query s completeness");
    assert_eq!(q, "ok partial epoch=0 [partial]");

    // The epoch tag races the writer (the enqueued root may already have
    // been solved and published by the time the response is rendered), so
    // only the queued count is exact.
    let queued = run("roots s App.main");
    assert!(queued.starts_with("ok queued 1 epoch="), "{queued}");
    let flushed = run("flush s");
    assert!(flushed.starts_with("ok flushed epoch=") && !flushed.contains("[partial]"), "{flushed}");

    assert!(run("query s reachable App.used").starts_with("ok true epoch="));
    assert!(run("query s reachable App.dead").starts_with("ok false epoch="));
    assert!(run("query s reachable-count").starts_with("ok "));
    assert!(run("query s poly-calls").starts_with("ok "));
    assert!(run("query s call-edges").starts_with("ok "));

    let stats = run("stats s");
    assert!(stats.contains("epochs_published=") && stats.contains("steps="), "{stats}");
    let rstats = run("stats");
    assert!(rstats.contains("sessions_live=1"), "{rstats}");

    assert!(run("query s reachable Nope.m").starts_with("err analysis:"));
    assert!(run("roots missing App.main").starts_with("err unknown-session:"));
    assert_eq!(run("evict s"), "ok evicted");
    assert!(run("query s epoch").starts_with("err unknown-session:"));

    let _ = std::fs::remove_dir_all(&dir);
}
