//! Negative-path protocol tests over a real TCP connection: malformed
//! commands, oversized request lines, invalid UTF-8, and truncated input
//! must each produce a structured `err ...` response (or a clean close for
//! mid-line EOF) without panicking the connection thread, and the
//! connection must stay usable afterwards.

use skipflow_server::{Client, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

/// One request line longer than this is rejected with `err proto:` — keep
/// in sync with `net::MAX_LINE_BYTES`.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// Starts a server on an ephemeral port and returns its address plus the
/// join handle for the accept loop (joined after `shutdown`).
fn start_server() -> (SocketAddr, thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn stop_server(addr: &SocketAddr, handle: thread::JoinHandle<()>) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    let resp = client.request("shutdown").expect("shutdown");
    assert_eq!(resp, "ok bye");
    handle.join().expect("server thread");
}

/// Sends raw bytes (no trailing newline added) and reads back one response
/// line from the same stream.
fn raw_roundtrip(stream: &mut TcpStream, bytes: &[u8]) -> String {
    stream.write_all(bytes).expect("write");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    line.trim_end().to_string()
}

#[test]
fn malformed_commands_get_structured_errors_and_the_connection_survives() {
    let (addr, handle) = start_server();
    let mut client = Client::connect(&addr).expect("connect");

    for (request, needle) in [
        ("bogus", "unknown request"),
        ("open s1", "usage"),
        ("open s1 x.sf badopt", "key=value"),
        ("roots s1", "usage"),
        ("query s1 reachable", "usage"),
        ("query s1 nope App.main", "unknown query"),
        ("flush no-such-session", "unknown session"),
        ("query no-such-session reachable App.main", "unknown session"),
    ] {
        let resp = client.request(request).expect("request");
        assert!(resp.starts_with("err "), "{request:?} -> {resp:?}");
        assert!(resp.contains(needle), "{request:?} -> {resp:?}");
    }

    // Blank lines are tolerated silently (no response at all), so a blank
    // followed by a ping earns exactly one response: the pong.
    let mut stream = TcpStream::connect(addr).expect("connect raw");
    let resp = raw_roundtrip(&mut stream, b"\n   \nping\n");
    assert_eq!(resp, "ok pong");

    // The same connection still serves well-formed traffic.
    assert_eq!(client.request("ping").expect("ping"), "ok pong");
    stop_server(&addr, handle);
}

#[test]
fn oversized_request_lines_are_rejected_without_buffering_them() {
    let (addr, handle) = start_server();
    let mut stream = TcpStream::connect(addr).expect("connect");

    // Well past the cap: the server must answer with a proto error after
    // reading at most MAX_LINE_BYTES + 1 bytes, discarding the rest.
    let mut huge = vec![b'a'; 4 * MAX_LINE_BYTES];
    huge.push(b'\n');
    let resp = raw_roundtrip(&mut stream, &huge);
    assert!(
        resp.starts_with("err proto: request line exceeds"),
        "oversized line -> {resp:?}"
    );

    // The tail was discarded up to the newline, so the connection is
    // back in line-sync and still usable.
    let resp = raw_roundtrip(&mut stream, b"ping\n");
    assert_eq!(resp, "ok pong");

    // Exactly at the cap (including nothing but payload) is still served:
    // the limit is a bound, not an off-by-one trap. An unknown request of
    // that length earns a parse error, not a proto-size error.
    let mut at_cap = vec![b'z'; MAX_LINE_BYTES - 1];
    at_cap.push(b'\n');
    let resp = raw_roundtrip(&mut stream, &at_cap);
    assert!(resp.contains("unknown request"), "at-cap line -> {resp:?}");

    stop_server(&addr, handle);
}

#[test]
fn invalid_utf8_is_rejected_and_the_connection_survives() {
    let (addr, handle) = start_server();
    let mut stream = TcpStream::connect(addr).expect("connect");

    let resp = raw_roundtrip(&mut stream, b"ping \xff\xfe\xfd\n");
    assert_eq!(resp, "err proto: request is not valid UTF-8");

    // A lone continuation byte embedded mid-command is caught too.
    let resp = raw_roundtrip(&mut stream, b"stats\x80\n");
    assert_eq!(resp, "err proto: request is not valid UTF-8");

    let resp = raw_roundtrip(&mut stream, b"ping\n");
    assert_eq!(resp, "ok pong");
    stop_server(&addr, handle);
}

#[test]
fn truncated_final_line_is_still_served_before_eof() {
    let (addr, handle) = start_server();

    // A request with no trailing newline followed by EOF (client shutdown
    // of the write half) must still be answered, then the server closes.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writer.write_all(b"ping").expect("write");
    writer.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert_eq!(line.trim_end(), "ok pong");
    // After answering the truncated line the server sees EOF and closes.
    line.clear();
    assert_eq!(reader.read_line(&mut line).expect("eof"), 0);

    stop_server(&addr, handle);
}

#[test]
fn abrupt_disconnects_do_not_poison_the_server() {
    let (addr, handle) = start_server();

    // Drop connections at every awkward point: before writing, mid-line
    // without a newline, and right after a huge partial line.
    drop(TcpStream::connect(addr).expect("connect"));
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"que").expect("write");
    }
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(&vec![b'x'; MAX_LINE_BYTES / 2]).expect("write");
    }
    // Give the per-connection threads a moment to observe the hangups.
    thread::sleep(Duration::from_millis(50));

    // A fresh client gets normal service.
    let mut client = Client::connect(&addr).expect("connect");
    assert_eq!(client.request("ping").expect("ping"), "ok pong");
    assert_eq!(client.request("sessions").expect("sessions"), "ok sessions=0");
    stop_server(&addr, handle);
}

#[test]
fn session_level_errors_after_real_traffic_are_structured() {
    let (addr, handle) = start_server();
    let mut client = Client::connect(&addr).expect("connect");

    let resp = client
        .request("open s synth:luindex scheduler=scc")
        .expect("open");
    assert!(resp.starts_with("ok opened"), "{resp:?}");

    // Duplicate open, bad method spec, and post-evict use all come back as
    // structured errors on a connection that keeps working.
    let resp = client.request("open s synth:luindex").expect("reopen");
    assert!(resp.starts_with("err "), "{resp:?}");
    let resp = client.request("roots s NoSuch.method").expect("bad root");
    assert!(resp.starts_with("err "), "{resp:?}");
    let resp = client.request("evict s").expect("evict");
    assert!(resp.starts_with("ok "), "{resp:?}");
    let resp = client.request("flush s").expect("flush after evict");
    assert!(resp.starts_with("err "), "{resp:?}");
    assert_eq!(client.request("ping").expect("ping"), "ok pong");

    stop_server(&addr, handle);
}
