//! The `skipflow-lint` binary: lints the workspace and exits non-zero on
//! any violation. Usage: `skipflow-lint [--root <path>]` (default `.`).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("error: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: skipflow-lint [--root <path>]");
                println!();
                println!("Enforces the workspace unsafe/atomics rules:");
                println!("  unsafe-allowlist   `unsafe` only in allowlisted files");
                println!("  safety-comment     every `unsafe` preceded by // SAFETY:");
                println!("  raw-atomic         std::sync::atomic only inside the shim");
                println!("  implicit-ordering  atomic ops name an explicit Ordering");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    match skipflow_lint::lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("skipflow-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            eprintln!("skipflow-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("skipflow-lint: error scanning {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
