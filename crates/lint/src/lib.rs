//! `skipflow-lint`: the workspace's unsafe-code and atomics gate.
//!
//! A source-level scanner (no rustc plumbing, no external deps) enforcing
//! four rules over every `.rs` file in the repository:
//!
//! 1. **Unsafe confinement** — the `unsafe` keyword may appear only in the
//!    files of [`UNSAFE_FILE_ALLOWLIST`]. The allowlist is the review
//!    surface: growing it is a deliberate, diff-visible act.
//! 2. **`SAFETY:` comments** — every line containing `unsafe` must be
//!    preceded by a contiguous `//` comment block containing `SAFETY:`
//!    (or carry one as a trailing comment). The comment is the proof
//!    obligation; code without it doesn't state *why* it is sound.
//! 3. **Atomic confinement** — raw `std::sync::atomic` paths may appear
//!    only inside the model-check shim ([`RAW_ATOMIC_ALLOWLIST`]).
//!    Everything else must import `skipflow_modelcheck::sync::atomic`, so
//!    the interleaving explorer sees every atomic the workspace performs.
//! 4. **Explicit orderings** — in files that use atomics, every atomic
//!    operation (`load`/`store`/`swap`/`fetch_*`/`compare_exchange*`) must
//!    name an ordering in its argument list. (The compiler already forces
//!    an `Ordering` argument; this rule keeps it *visible at the call
//!    site* — no helper that hides the ordering away from review.)
//!
//! Comments and string/char literals are stripped (line structure
//! preserved) before token matching, so prose about "unsafe" or atomics
//! never trips the gate. The scanner skips `target/`, VCS directories, and
//! any `fixtures/` directory (the lint's own test corpus deliberately
//! violates every rule).

#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Files allowed to contain the `unsafe` keyword, as `/`-separated paths
/// relative to the workspace root.
///
/// The production surface is exactly two modules — the publication cell and
/// the model-check shim (whose job is to wrap the unsafe primitives) — plus
/// the shim's own test suites, which must forge raw-pointer misuse to prove
/// the explorer catches it.
pub const UNSAFE_FILE_ALLOWLIST: &[&str] = &[
    "crates/server/src/publish.rs",
    "crates/modelcheck/src/sched.rs",
    "crates/modelcheck/src/shim.rs",
    "crates/modelcheck/tests/explorer.rs",
    "crates/modelcheck/tests/passthrough.rs",
];

/// Files allowed to name `std::sync::atomic` directly: only the shim, which
/// exists to wrap it.
pub const RAW_ATOMIC_ALLOWLIST: &[&str] = &["crates/modelcheck/src/shim.rs"];

/// Atomic-operation method names whose call sites must name an ordering.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Tokens accepted as "names an ordering" inside an atomic op's arguments.
const ORDERING_TOKENS: &[&str] =
    &["SeqCst", "Acquire", "Release", "AcqRel", "Relaxed", "Ordering", "order"];

/// Which rule a [`Violation`] breaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// Rule 1: `unsafe` outside [`UNSAFE_FILE_ALLOWLIST`].
    UnsafeOutsideAllowlist,
    /// Rule 2: `unsafe` without a preceding `// SAFETY:` comment.
    MissingSafetyComment,
    /// Rule 3: `std::sync::atomic` outside [`RAW_ATOMIC_ALLOWLIST`].
    RawAtomicImport,
    /// Rule 4: an atomic op whose arguments name no ordering.
    ImplicitOrdering,
}

impl Rule {
    /// Short stable identifier, printed in violation lines.
    pub fn code(self) -> &'static str {
        match self {
            Rule::UnsafeOutsideAllowlist => "unsafe-allowlist",
            Rule::MissingSafetyComment => "safety-comment",
            Rule::RawAtomicImport => "raw-atomic",
            Rule::ImplicitOrdering => "implicit-ordering",
        }
    }
}

/// One rule violation at one source line.
#[derive(Clone, Debug)]
pub struct Violation {
    /// `/`-separated path relative to the linted root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The broken rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.code(), self.message)
    }
}

/// Replaces the contents of comments and string/char literals with spaces,
/// preserving line structure exactly (so token positions keep their line
/// numbers). Handles nested block comments, raw strings (`r#"…"#`), byte
/// strings, escapes, and lifetimes-vs-char-literals.
pub fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;

    // Pushes a newline as-is (line structure!), anything else as a space.
    fn blank(out: &mut Vec<u8>, c: u8) {
        out.push(if c == b'\n' { b'\n' } else { b' ' });
    }

    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                blank(&mut out, b[i]);
                i += 1;
            }
            continue;
        }
        // Block comment (nested, per Rust).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1usize;
            blank(&mut out, b[i]);
            blank(&mut out, b[i + 1]);
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and raw byte) strings: r"…", r#"…"#, br#"…"#…
        let prev_is_ident = !out.is_empty()
            && matches!(out[out.len() - 1], b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_');
        if !prev_is_ident && (c == b'r' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'r')) {
            let start = if c == b'b' { i + 2 } else { i + 1 };
            let mut j = start;
            while j < b.len() && b[j] == b'#' {
                j += 1;
            }
            if j < b.len() && b[j] == b'"' {
                let hashes = j - start;
                for &byte in &b[i..=j] {
                    out.push(if byte == b'"' { b'"' } else { b' ' });
                }
                i = j + 1;
                // Scan for `"` followed by `hashes` hashes.
                'raw: while i < b.len() {
                    if b[i] == b'"' {
                        let closes = (0..hashes).all(|h| {
                            i + 1 + h < b.len() && b[i + 1 + h] == b'#'
                        });
                        if closes {
                            out.push(b'"');
                            out.extend(std::iter::repeat_n(b' ', hashes));
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    blank(&mut out, b[i]);
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary (and byte) strings.
        if c == b'"' {
            out.push(b'"');
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                } else if b[i] == b'"' {
                    out.push(b'"');
                    i += 1;
                    break;
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime: 'x' / '\n' are literals; 'a (no closing
        // quote right after) is a lifetime and passes through untouched.
        if c == b'\'' {
            let is_char = if i + 1 < b.len() && b[i + 1] == b'\\' {
                true
            } else {
                i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\''
            };
            if is_char {
                out.push(b'\'');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        blank(&mut out, b[i]);
                        blank(&mut out, b[i + 1]);
                        i += 2;
                    } else if b[i] == b'\'' {
                        out.push(b'\'');
                        i += 1;
                        break;
                    } else {
                        blank(&mut out, b[i]);
                        i += 1;
                    }
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    // Only ASCII bytes were substituted, so the result stays valid UTF-8.
    String::from_utf8(out).expect("stripping preserves UTF-8")
}

/// Whether `line` contains `unsafe` as a standalone word (after stripping).
fn has_unsafe_token(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find("unsafe") {
        let start = from + pos;
        let end = start + "unsafe".len();
        let before_ok = start == 0
            || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let after_ok =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Whether the `unsafe` at `idx` (0-based) is justified: a trailing
/// `SAFETY:` on the same original line, or a contiguous block of `//`
/// comment lines directly above (attributes and blank lines are climbed
/// over) containing `SAFETY:` — or, for `unsafe fn` declarations, the
/// conventional `# Safety` rustdoc heading.
fn has_safety_comment(original_lines: &[&str], idx: usize) -> bool {
    fn justifies(line: &str) -> bool {
        line.contains("SAFETY:") || line.contains("# Safety")
    }
    if justifies(original_lines[idx]) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let t = original_lines[j].trim_start();
        if t.starts_with("//") {
            if justifies(t) {
                return true;
            }
        } else if t.starts_with("#[") || t.is_empty() {
            continue;
        } else {
            return false;
        }
    }
    false
}

/// Rule 4: scan `stripped` for `.op(` call sites and check each argument
/// span (to the matching close paren, across lines) for an ordering token.
/// Empty argument lists are skipped — every real atomic op requires an
/// `Ordering` argument to compile at all, so a zero-argument `.load()` is
/// necessarily some other type's method.
fn check_orderings(file: &str, stripped: &str, out: &mut Vec<Violation>) {
    for op in ATOMIC_OPS {
        let needle = format!(".{op}(");
        let mut from = 0;
        while let Some(pos) = stripped[from..].find(&needle) {
            let call = from + pos;
            let args_start = call + needle.len();
            let mut depth = 1usize;
            let mut end = stripped.len();
            for (off, ch) in stripped[args_start..].char_indices() {
                match ch {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => {
                        depth -= 1;
                        if depth == 0 {
                            end = args_start + off;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let args = &stripped[args_start..end];
            let non_empty = args.chars().any(|c| !c.is_whitespace());
            if non_empty && !ORDERING_TOKENS.iter().any(|t| args.contains(t)) {
                let line = stripped[..call].chars().filter(|&c| c == '\n').count() + 1;
                out.push(Violation {
                    file: file.to_string(),
                    line,
                    rule: Rule::ImplicitOrdering,
                    message: format!(
                        "atomic `{op}` call names no ordering (SeqCst/Acquire/...) in its arguments"
                    ),
                });
            }
            from = args_start;
        }
    }
}

/// Lints one file's source. `file` is the `/`-separated workspace-relative
/// path (it drives the allowlists). Pure — the fixture tests feed it
/// synthetic paths and sources.
pub fn lint_source(file: &str, source: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let stripped = strip_comments_and_strings(source);
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let original_lines: Vec<&str> = source.lines().collect();

    let unsafe_allowed = UNSAFE_FILE_ALLOWLIST.contains(&file);
    let atomic_allowed = RAW_ATOMIC_ALLOWLIST.contains(&file);

    for (idx, line) in stripped_lines.iter().enumerate() {
        if has_unsafe_token(line) {
            if !unsafe_allowed {
                out.push(Violation {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: Rule::UnsafeOutsideAllowlist,
                    message: "`unsafe` outside the allowlist (see \
                              skipflow-lint's UNSAFE_FILE_ALLOWLIST)"
                        .to_string(),
                });
            }
            if !has_safety_comment(&original_lines, idx) {
                out.push(Violation {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: Rule::MissingSafetyComment,
                    message: "`unsafe` without a preceding `// SAFETY:` comment".to_string(),
                });
            }
        }
        if !atomic_allowed && line.contains("std::sync::atomic") {
            out.push(Violation {
                file: file.to_string(),
                line: idx + 1,
                rule: Rule::RawAtomicImport,
                message: "raw `std::sync::atomic` outside the shim; import \
                          `skipflow_modelcheck::sync::atomic` instead"
                    .to_string(),
            });
        }
    }

    // Rule 4 is scoped to files that actually traffic in atomics (via the
    // shim or raw), so `.load()`-style methods of unrelated types elsewhere
    // are never inspected.
    if stripped.contains("sync::atomic") {
        check_orderings(file, &stripped, &mut out);
    }
    out
}

/// Recursively lints every `.rs` file under `root`, skipping `target`,
/// VCS metadata, and `fixtures` directories. Violations carry root-relative
/// `/`-separated paths; the result is sorted by file then line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        out.extend(lint_source(rel, &source));
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == ".jj" || name == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked path is under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_preserves_lines_and_removes_prose() {
        let src = "// unsafe in a comment\nlet s = \"unsafe in a string\";\n/* block\nunsafe */\nlet l: &'static str = \"x\";\nlet c = 'u';\n";
        let stripped = strip_comments_and_strings(src);
        assert_eq!(stripped.lines().count(), src.lines().count());
        assert!(!stripped.contains("unsafe"));
        assert!(stripped.contains("let s"));
        assert!(stripped.contains("&'static str"), "lifetime survived: {stripped}");
    }

    #[test]
    fn stripper_handles_raw_strings() {
        let src = "let r = r#\"unsafe \"quoted\" std::sync::atomic\"#;\nlet after = 1;\n";
        let stripped = strip_comments_and_strings(src);
        assert!(!stripped.contains("unsafe"));
        assert!(!stripped.contains("std::sync::atomic"));
        assert!(stripped.contains("let after = 1;"));
    }

    #[test]
    fn unsafe_token_needs_word_boundaries() {
        assert!(has_unsafe_token("unsafe { x }"));
        assert!(has_unsafe_token("pub unsafe fn f()"));
        assert!(!has_unsafe_token("UnsafeSink"));
        assert!(!has_unsafe_token("not_unsafe_here"));
        assert!(!has_unsafe_token("unsafety"));
    }

    #[test]
    fn allowlisted_file_with_safety_comment_is_clean() {
        let src = "// SAFETY: test fixture, pointer is valid.\nunsafe { *p }\n";
        let v = lint_source("crates/server/src/publish.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn safety_comment_climbs_over_attributes() {
        let src = "// SAFETY: justified.\n#[allow(dead_code)]\nunsafe impl Send for X {}\n";
        let v = lint_source("crates/server/src/publish.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn ordering_check_skips_zero_arg_loads() {
        let src = "use skipflow_modelcheck::sync::atomic::AtomicU64;\nlet v = cell.load();\n";
        let v = lint_source("crates/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn ordering_check_accepts_variables_named_order() {
        let src = "use skipflow_modelcheck::sync::atomic::AtomicU64;\nfn f(a: &AtomicU64, order: Ordering) -> u64 { a.load(order) }\n";
        let v = lint_source("crates/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn multiline_atomic_call_is_spanned() {
        let src = "use skipflow_modelcheck::sync::atomic::AtomicU64;\nlet r = a.compare_exchange(\n    0,\n    1,\n    SeqCst,\n    SeqCst,\n);\n";
        let v = lint_source("crates/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }
}
