//! The lint gate's own acceptance tests: the real workspace must be clean,
//! and each fixture must trip exactly the rule it was written to violate.

use skipflow_lint::{lint_source, lint_workspace, Rule};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn the_workspace_is_clean() {
    let violations = lint_workspace(&workspace_root()).expect("scan workspace");
    assert!(
        violations.is_empty(),
        "workspace lint violations:\n{}",
        violations.iter().map(|v| format!("  {v}\n")).collect::<String>()
    );
}

#[test]
fn fixture_unsafe_outside_allowlist_is_flagged() {
    let v = lint_source("crates/core/src/evil.rs", &fixture("unsafe_outside_allowlist.rs"));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::UnsafeOutsideAllowlist);
    assert_eq!(v[0].line, 5);
}

#[test]
fn fixture_missing_safety_comment_is_flagged() {
    // Linted under an allowlisted path so ONLY the safety-comment rule
    // fires.
    let v = lint_source("crates/server/src/publish.rs", &fixture("missing_safety_comment.rs"));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::MissingSafetyComment);
    assert_eq!(v[0].line, 4);
}

#[test]
fn fixture_raw_atomic_import_is_flagged() {
    let v = lint_source("crates/core/src/evil.rs", &fixture("raw_atomic_import.rs"));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::RawAtomicImport);
    assert_eq!(v[0].line, 3);
}

#[test]
fn fixture_raw_atomic_is_allowed_in_the_shim() {
    let v = lint_source("crates/modelcheck/src/shim.rs", &fixture("raw_atomic_import.rs"));
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn fixture_implicit_ordering_is_flagged() {
    let v = lint_source("crates/core/src/evil.rs", &fixture("implicit_ordering.rs"));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::ImplicitOrdering);
    assert_eq!(v[0].line, 8);
}

#[test]
fn the_binary_reports_violations_and_fails() {
    // Run the lint engine the way CI does, against a tree containing one
    // bad file, and check the process-level contract (non-zero exit).
    let dir = std::env::temp_dir().join(format!("skipflow-lint-bin-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("src")).unwrap();
    std::fs::write(dir.join("src/bad.rs"), fixture("unsafe_outside_allowlist.rs")).unwrap();
    let exe = env!("CARGO_BIN_EXE_skipflow-lint");
    let out = std::process::Command::new(exe)
        .arg("--root")
        .arg(&dir)
        .output()
        .expect("run skipflow-lint");
    assert!(!out.status.success(), "lint must fail on a dirty tree");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unsafe-allowlist"), "stdout: {stdout}");

    // And succeed on a clean tree.
    std::fs::write(dir.join("src/bad.rs"), "pub fn fine() {}\n").unwrap();
    let out = std::process::Command::new(exe)
        .arg("--root")
        .arg(&dir)
        .output()
        .expect("run skipflow-lint");
    assert!(out.status.success(), "lint must pass on a clean tree");
    let _ = std::fs::remove_dir_all(&dir);
}
