// Fixture: violates rule 3 only — names std::sync::atomic outside the shim
// (every op still states its ordering, so rule 4 stays quiet).
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(n: &AtomicU64) -> u64 {
    n.fetch_add(1, Ordering::SeqCst)
}
