// Fixture: violates rule 4 only — imports the shim's atomics (rule 3 is
// satisfied) but calls an op whose arguments name no ordering. Does not
// compile against the real API, which is the point: the lint must flag it
// at the source level.
use skipflow_modelcheck::sync::atomic::AtomicU64;

pub fn bump(n: &AtomicU64) -> u64 {
    n.fetch_add(1)
}
