// Fixture: violates rule 1 only — the SAFETY comment is present, but this
// path is not on the unsafe allowlist.
pub fn read(p: *const u8) -> u8 {
    // SAFETY: fixture prose; the rule under test is the allowlist.
    unsafe { *p }
}
