// Fixture: violates rule 2 only — linted under an allowlisted path, but the
// unsafe block carries no SAFETY justification.
pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
