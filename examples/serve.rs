//! Analysis-as-a-service, end to end in one process: bind the server on an
//! ephemeral loopback port, run it on a background thread, and drive a
//! scripted client conversation over the line protocol — open a session
//! from the generated corpus, register roots, flush, query the published
//! snapshot, and read the observability counters.
//!
//! ```text
//! cargo run --release --example serve
//! ```
//!
//! The same protocol is reachable from any TCP client once the standalone
//! server is up (`skipflow serve --addr 127.0.0.1:7411`).

use skipflow::server::{Client, Server, ServerConfig};
use std::thread;

fn main() {
    // Port 0: the kernel picks a free port, so the example never collides
    // with a real server.
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let running = thread::spawn(move || server.run());

    let mut client = Client::connect(&addr).expect("connect");
    let script = [
        "ping",
        "open app synth:luindex scheduler=adaptive",
        "roots app Main.main",
        "flush app",
        "query app reachable-count",
        "query app call-edges",
        "query app completeness",
        "stats app",
        "stats",
        "evict app",
        "shutdown",
    ];
    for line in script {
        let resp = client.request(line).expect("request");
        println!("> {line}");
        println!("< {resp}");
    }

    running.join().expect("server thread").expect("clean shutdown");
}
