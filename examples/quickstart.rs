//! Quickstart: compile a small program from source, run SkipFlow through the
//! session API, and inspect the results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use skipflow::analysis::AnalysisSession;
use skipflow::ir::frontend::compile;

const SRC: &str = "
    class Config {
      // A build-time feature flag, disabled in this build.
      static method tracingEnabled(): int { return 0; }
    }
    class Tracer {
      static method init(): void { return; }
      static method record(x: int): void { return; }
    }
    class App {
      static method work(): int {
        var total = 0;
        var i = 0;
        while (i < 10) {
          total = any();
          if (Config.tracingEnabled()) {
            Tracer.record(total);
          }
          i = any();
        }
        return total;
      }
      static method main(): void {
        if (Config.tracingEnabled()) {
          Tracer.init();
        }
        App.work();
      }
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = compile(SRC)?;
    let app = program.type_by_name("App").expect("App exists");
    let main = program.method_by_name(app, "main").expect("main exists");

    println!("== SkipFlow ==");
    let mut session = AnalysisSession::builder(&program)
        .skipflow()
        .roots([main])
        .build()?;
    let result = session.solve();
    for m in result.reachable_methods() {
        println!("  reachable: {}", program.method_label(*m));
    }
    let metrics = result.metrics(&program);
    println!("  {metrics}");

    println!("\n== Baseline PTA ==");
    let mut baseline_session = AnalysisSession::builder(&program)
        .baseline_pta()
        .roots([main])
        .build()?;
    let baseline = baseline_session.solve();
    for m in baseline.reachable_methods() {
        println!("  reachable: {}", program.method_label(*m));
    }

    let tracer = program.type_by_name("Tracer").unwrap();
    let init = program.method_by_name(tracer, "init").unwrap();
    let record = program.method_by_name(tracer, "record").unwrap();
    println!(
        "\nSkipFlow proves the tracer dead: init reachable = {}, record reachable = {}",
        result.is_reachable(init),
        result.is_reachable(record)
    );
    println!(
        "The baseline cannot: init reachable = {}, record reachable = {}",
        baseline.is_reachable(init),
        baseline.is_reachable(record)
    );
    assert!(!result.is_reachable(init) && !result.is_reachable(record));
    assert!(baseline.is_reachable(init) && baseline.is_reachable(record));
    Ok(())
}
