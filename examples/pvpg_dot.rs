//! Dumps the PVPG of the paper's `isVirtual` example as Graphviz `dot`,
//! using the figure conventions of the paper (solid = use, dashed =
//! predicate, dotted = observe; red = enabled, grey = disabled) — compare
//! with Figures 7 and 8.
//!
//! ```text
//! cargo run --example pvpg_dot > isvirtual.dot && dot -Tpng isvirtual.dot -o isvirtual.png
//! ```

use skipflow::analysis::dot::method_pvpg_dot;
use skipflow::analysis::AnalysisSession;
use skipflow::ir::frontend::compile;

const SRC: &str = "
    abstract class BaseVirtualThread extends Thread { }
    class Thread {
      method isVirtual(): int {
        if (this instanceof BaseVirtualThread) { return 1; }
        return 0;
      }
    }
    class PlatformThread extends Thread { }
    class ThreadSet { method remove(t: Thread): void { return; } }
    class SharedThreadContainer {
      var virtualThreads: ThreadSet;
      method onExit(thread: Thread): void {
        if (thread.isVirtual()) {
          var s = this.virtualThreads;
          s.remove(thread);
        }
      }
    }
    class Main {
      static method main(): void {
        var c = new SharedThreadContainer();
        c.virtualThreads = new ThreadSet();
        c.onExit(new PlatformThread());
      }
    }
";

fn main() {
    let program = compile(SRC).expect("example compiles");
    let main_cls = program.type_by_name("Main").unwrap();
    let main = program.method_by_name(main_cls, "main").unwrap();
    let mut session = AnalysisSession::builder(&program)
        .skipflow()
        .roots([main])
        .build()
        .expect("valid inputs");
    let result = session.solve();

    for (class, method) in [("SharedThreadContainer", "onExit"), ("Thread", "isVirtual")] {
        let c = program.type_by_name(class).unwrap();
        let m = program.method_by_name(c, method).unwrap();
        let dot = method_pvpg_dot(&result, &program, m).expect("reachable");
        println!("// === {class}.{method} (paper Figures 7/8) ===");
        println!("{dot}");
    }
}
