//! The paper's Figure 1: the DaCapo Sunflow guarded-default pattern.
//!
//! `Scene.render` assigns `new FrameDisplay()` to its parameter only when it
//! is null — and it never is. SkipFlow's predicate edge keeps the allocation
//! disabled, so the entire GUI stack behind `FrameDisplay` is proven
//! unreachable; the flow-insensitive baseline drags it in through the
//! spurious path `new FrameDisplay() ⇝ display ⇝ imageBegin()`.
//!
//! ```text
//! cargo run --example sunflow_pattern
//! ```

use skipflow::analysis::AnalysisSession;
use skipflow::ir::frontend::compile;

const SRC: &str = "
    abstract class Display { abstract method imageBegin(): void; }

    class FileDisplay extends Display {
      method imageBegin(): void { return; }
    }

    // The GUI display: its imageBegin transitively initializes the AWT and
    // Swing stand-ins below.
    class FrameDisplay extends Display {
      method imageBegin(): void {
        Awt.init();
        Swing.init();
      }
    }
    class Awt {
      static method init(): void { Awt.loadToolkit(); }
      static method loadToolkit(): void { return; }
    }
    class Swing {
      static method init(): void { Swing.installLaf(); }
      static method installLaf(): void { return; }
    }

    class Scene {
      method render(display: Display): void {
        var d = display;
        if (d == null) {
          d = new FrameDisplay();
        }
        d.imageBegin();
      }
    }

    class BucketRenderer {
      method render(display: Display): void {
        display.imageBegin();
      }
    }

    class Main {
      static method main(): void {
        var scene = new Scene();
        var display = new FileDisplay();   // never null
        scene.render(display);
        var bucket = new BucketRenderer();
        bucket.render(display);
      }
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = compile(SRC)?;
    let main_cls = program.type_by_name("Main").unwrap();
    let main = program.method_by_name(main_cls, "main").unwrap();

    let mut skipflow_session = AnalysisSession::builder(&program)
        .skipflow()
        .roots([main])
        .build()?;
    let skipflow = skipflow_session.solve();
    let mut baseline_session = AnalysisSession::builder(&program)
        .baseline_pta()
        .roots([main])
        .build()?;
    let baseline = baseline_session.solve();

    println!(
        "reachable methods: baseline PTA = {}, SkipFlow = {}",
        baseline.reachable_methods().len(),
        skipflow.reachable_methods().len()
    );

    let frame_display = program.type_by_name("FrameDisplay").unwrap();
    println!(
        "\nFrameDisplay instantiated?  baseline: {:<5}  SkipFlow: {}",
        baseline.is_instantiated(frame_display),
        skipflow.is_instantiated(frame_display)
    );
    for (cls, m) in [("Awt", "loadToolkit"), ("Swing", "installLaf")] {
        let c = program.type_by_name(cls).unwrap();
        let mid = program.method_by_name(c, m).unwrap();
        println!(
            "{cls}.{m} reachable?       baseline: {:<5}  SkipFlow: {}",
            baseline.is_reachable(mid),
            skipflow.is_reachable(mid)
        );
    }

    // Dead-code report for Scene.render: the then-branch (the default
    // allocation) is the dead block.
    let scene = program.type_by_name("Scene").unwrap();
    let render = program.method_by_name(scene, "render").unwrap();
    println!("\n{}", skipflow.dead_code_report(&program, render));

    assert!(!skipflow.is_instantiated(frame_display));
    assert!(baseline.is_instantiated(frame_display));
    Ok(())
}
