//! The paper's Figure 2 / 7 / 8: the JDK `SharedThreadContainer.onExit`
//! example, including the fixed-point value states of Figure 8.
//!
//! The condition (`thread.isVirtual()`) and the type check it depends on
//! live in *different methods* — proving the `remove()` call dead needs an
//! interprocedural analysis that tracks types (the check always fails),
//! primitive values (the constant `false` flows back), and enough
//! flow-sensitivity to use the fact (the predicate edge on the branch).
//!
//! ```text
//! cargo run --example jdk_isvirtual
//! ```

use skipflow::analysis::{AnalysisSession, ValueState};
use skipflow::ir::frontend::compile;

const SRC: &str = "
    abstract class BaseVirtualThread extends Thread { }
    class Thread {
      method isVirtual(): int {
        if (this instanceof BaseVirtualThread) { return 1; }
        return 0;
      }
    }
    class VirtualThread extends BaseVirtualThread { }
    class PlatformThread extends Thread { }

    class ThreadSet {
      method remove(t: Thread): void { return; }
    }

    class SharedThreadContainer {
      var virtualThreads: ThreadSet;
      method onExit(thread: Thread): void {
        if (thread.isVirtual()) {
          var s = this.virtualThreads;
          s.remove(thread);
        }
      }
    }

    class Main {
      static method main(): void {
        var c = new SharedThreadContainer();
        c.virtualThreads = new ThreadSet();
        var t = new PlatformThread();   // the app never uses virtual threads
        c.onExit(t);
      }
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = compile(SRC)?;
    let main_cls = program.type_by_name("Main").unwrap();
    let main = program.method_by_name(main_cls, "main").unwrap();

    let mut session = AnalysisSession::builder(&program)
        .skipflow()
        .roots([main])
        .build()?;
    let result = session.solve();

    let thread = program.type_by_name("Thread").unwrap();
    let is_virtual = program.method_by_name(thread, "isVirtual").unwrap();
    let stc = program.type_by_name("SharedThreadContainer").unwrap();
    let on_exit = program.method_by_name(stc, "onExit").unwrap();
    let set = program.type_by_name("ThreadSet").unwrap();
    let remove = program.method_by_name(set, "remove").unwrap();

    // The Figure 8 fixed-point facts.
    println!("VS(Return of isVirtual) = {:?}", result.return_state(is_virtual));
    println!("VS(p_thread of onExit)  = {:?}", result.param_state(on_exit, 1));
    println!("ThreadSet.remove reachable? {}", result.is_reachable(remove));
    println!();
    println!("{}", result.dead_code_report(&program, on_exit));

    assert_eq!(result.return_state(is_virtual), Some(&ValueState::Const(0)));
    assert!(!result.is_reachable(remove));

    // The baseline cannot prove it.
    let mut baseline_session = AnalysisSession::builder(&program)
        .baseline_pta()
        .roots([main])
        .build()?;
    let baseline = baseline_session.solve();
    println!(
        "baseline PTA: ThreadSet.remove reachable? {}",
        baseline.is_reachable(remove)
    );
    assert!(baseline.is_reachable(remove));
    Ok(())
}
