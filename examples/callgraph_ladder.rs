//! The call-graph precision ladder: CHA ⊇ RTA ⊇ PTA ⊇ SkipFlow on one
//! generated benchmark (the comparators discussed in the paper's §6), all
//! queried through the unified `CallGraphQuery` interface.
//!
//! ```text
//! cargo run --release --example callgraph_ladder [benchmark-name]
//! ```

use skipflow::analysis::{AnalysisSession, CallGraphQuery};
use skipflow::baselines::{class_hierarchy_analysis, rapid_type_analysis};
use skipflow::synth::{build_benchmark, suites};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "xalan".to_string());
    let spec = suites::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name:?}");
        std::process::exit(2);
    });
    let bench = build_benchmark(&spec);
    let p = &bench.program;

    let cha = class_hierarchy_analysis(p, &bench.roots);
    let rta = rapid_type_analysis(p, &bench.roots);
    let mut pta_session = AnalysisSession::builder(p)
        .baseline_pta()
        .roots(bench.roots.iter().copied())
        .build()
        .expect("valid benchmark roots");
    let pta = pta_session.solve();
    let mut skf_session = AnalysisSession::builder(p)
        .skipflow()
        .roots(bench.roots.iter().copied())
        .build()
        .expect("valid benchmark roots");
    let skf = skf_session.solve();

    println!("benchmark {name}: {} concrete methods generated\n", bench.total_methods());
    println!("{:<36} {:>10} {:>10}", "analysis", "reachable", "polycalls");
    println!("{}", "-".repeat(60));
    // One row per rung, all through the same CallGraphQuery interface.
    let rungs: [(&str, &dyn CallGraphQuery); 4] = [
        ("CHA (Dean et al. 1995)", &cha),
        ("RTA (Bacon & Sweeney 1996)", &rta),
        ("PTA (Wimmer et al. 2024)", &pta),
        ("SkipFlow (this paper)", &skf),
    ];
    for (label, analysis) in rungs {
        println!(
            "{:<36} {:>10} {:>10}",
            label,
            analysis.reachable_count(),
            analysis.poly_call_count()
        );
    }

    // The ladder must hold: each analysis refines the one above it.
    for pair in rungs.windows(2) {
        let (coarse_label, coarser) = pair[0];
        let (fine_label, finer) = pair[1];
        assert!(
            finer.refines(coarser),
            "{fine_label} must refine {coarse_label}"
        );
    }
    println!("\nladder verified: SkipFlow ⊆ PTA ⊆ RTA ⊆ CHA");
}
