//! The call-graph precision ladder: CHA ⊇ RTA ⊇ PTA ⊇ SkipFlow on one
//! generated benchmark (the comparators discussed in the paper's §6).
//!
//! ```text
//! cargo run --release --example callgraph_ladder [benchmark-name]
//! ```

use skipflow::analysis::{analyze, AnalysisConfig};
use skipflow::baselines::{class_hierarchy_analysis, rapid_type_analysis};
use skipflow::synth::{build_benchmark, suites};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "xalan".to_string());
    let spec = suites::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name:?}");
        std::process::exit(2);
    });
    let bench = build_benchmark(&spec);
    let p = &bench.program;

    let cha = class_hierarchy_analysis(p, &bench.roots);
    let rta = rapid_type_analysis(p, &bench.roots);
    let pta = analyze(p, &bench.roots, &AnalysisConfig::baseline_pta());
    let skf = analyze(p, &bench.roots, &AnalysisConfig::skipflow());

    println!("benchmark {name}: {} concrete methods generated\n", bench.total_methods());
    println!("{:<36} {:>10} {:>10}", "analysis", "reachable", "polycalls");
    println!("{}", "-".repeat(60));
    println!("{:<36} {:>10} {:>10}", "CHA (Dean et al. 1995)", cha.reachable_count(), cha.poly_calls);
    println!("{:<36} {:>10} {:>10}", "RTA (Bacon & Sweeney 1996)", rta.reachable_count(), rta.poly_calls);
    let pm = pta.metrics(p);
    println!(
        "{:<36} {:>10} {:>10}",
        "PTA (Wimmer et al. 2024)",
        pta.reachable_methods().len(),
        pm.poly_calls
    );
    let sm = skf.metrics(p);
    println!(
        "{:<36} {:>10} {:>10}",
        "SkipFlow (this paper)",
        skf.reachable_methods().len(),
        sm.poly_calls
    );

    // The ladder must hold.
    assert!(rta.reachable.is_subset(&cha.reachable));
    assert!(pta.reachable_methods().is_subset(&rta.reachable));
    assert!(skf.reachable_methods().is_subset(pta.reachable_methods()));
    println!("\nladder verified: SkipFlow ⊆ PTA ⊆ RTA ⊆ CHA");
}
