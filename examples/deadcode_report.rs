//! Dead-code and devirtualization reporting on a generated benchmark — the
//! compiler-facing consumers of SkipFlow's results (§6 "Impact on Compiler
//! Optimizations").
//!
//! ```text
//! cargo run --release --example deadcode_report [benchmark-name]
//! ```

use skipflow::analysis::AnalysisSession;
use skipflow::synth::{build_benchmark, suites};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "sunflow".to_string());
    let spec = suites::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name:?}; available:");
        for s in suites::all() {
            eprintln!("  {}", s.name);
        }
        std::process::exit(2);
    });

    let bench = build_benchmark(&spec);
    let mut pta_session = AnalysisSession::builder(&bench.program)
        .baseline_pta()
        .roots(bench.roots.iter().copied())
        .build()
        .expect("valid benchmark roots");
    let pta = pta_session.solve();
    let mut skf_session = AnalysisSession::builder(&bench.program)
        .skipflow()
        .roots(bench.roots.iter().copied())
        .build()
        .expect("valid benchmark roots");
    let skf = skf_session.solve();

    println!(
        "benchmark {name}: {} methods generated ({} live + {} guarded)",
        bench.total_methods(),
        bench.live_methods,
        bench.dead_methods
    );
    println!(
        "reachable: PTA = {}, SkipFlow = {} ({:.1}% reduction)",
        pta.reachable_methods().len(),
        skf.reachable_methods().len(),
        (1.0 - skf.reachable_methods().len() as f64 / pta.reachable_methods().len() as f64)
            * 100.0
    );

    // Methods the baseline keeps but SkipFlow removes entirely.
    let removed: Vec<_> = pta
        .reachable_methods()
        .iter()
        .filter(|m| !skf.is_reachable(**m))
        .collect();
    println!("\nmethods removed by SkipFlow ({} total, first 10):", removed.len());
    for m in removed.iter().take(10) {
        println!("  {}", bench.program.method_label(**m));
    }

    // Devirtualization and partial dead code inside surviving methods.
    let mut devirt = 0usize;
    let mut partial = 0usize;
    for &m in skf.reachable_methods() {
        devirt += skf.devirtualized_sites(m).len();
        if !skf.dead_blocks(m).is_empty() {
            partial += 1;
        }
    }
    println!("\ndevirtualized call sites: {devirt}");
    println!("reachable methods containing dead blocks: {partial}");

    // A sample per-method report.
    if let Some(&&m) = removed.first() {
        println!("\nsample report for a removed method:");
        println!("{}", skf.dead_code_report(&bench.program, m));
    }

    let metrics_pta = pta.metrics(&bench.program);
    let metrics_skf = skf.metrics(&bench.program);
    println!("PTA metrics:      {metrics_pta}");
    println!("SkipFlow metrics: {metrics_skf}");
}
