//! Differential validation of the session API's incremental resume: solving
//! roots `A`, then `add_roots(B)` and re-solving, must be **bit-identical**
//! (reachable set, instantiated types, per-flow states, liveness, linked
//! targets, metrics) to a fresh session over `A ∪ B` — across every
//! solver × scheduler combination, with and without saturation. This is the
//! monotone half of the checkpoint invariant documented at the top of
//! `crates/core/src/engine.rs`.

use skipflow::analysis::{
    analyze, AnalysisConfig, AnalysisSession, SchedulerKind, SolverKind,
};
use skipflow::ir::MethodId;
use skipflow::synth::{
    build_benchmark, pick_spread_roots, suites, Benchmark, BenchmarkSpec, Suite,
};

mod common;
use common::assert_results_identical;

/// Every solver × scheduler × narrow-join-width combination the resume
/// matrix covers (the reference solver ignores both knobs, so it appears
/// once). The Adaptive scheduler and the default width run on every
/// solver; the fast-path-off (0) and everything-full-join (∞) widths ride
/// on the sequential solver under the two schedulers that exercise them
/// hardest.
fn solver_matrix() -> Vec<(SolverKind, SchedulerKind, usize)> {
    let default_width = AnalysisConfig::skipflow().narrow_join_width();
    vec![
        (SolverKind::Sequential, SchedulerKind::Fifo, default_width),
        (SolverKind::Sequential, SchedulerKind::SccPriority, default_width),
        (SolverKind::Sequential, SchedulerKind::Adaptive, default_width),
        (SolverKind::Sequential, SchedulerKind::Fifo, 0),
        (SolverKind::Sequential, SchedulerKind::Adaptive, 0),
        (SolverKind::Sequential, SchedulerKind::Fifo, usize::MAX),
        (SolverKind::Sequential, SchedulerKind::Adaptive, usize::MAX),
        (SolverKind::Parallel { threads: 4 }, SchedulerKind::Fifo, default_width),
        (SolverKind::Parallel { threads: 4 }, SchedulerKind::SccPriority, default_width),
        (SolverKind::Parallel { threads: 4 }, SchedulerKind::Adaptive, default_width),
        (SolverKind::Parallel { threads: 4 }, SchedulerKind::Adaptive, usize::MAX),
        (SolverKind::Reference, SchedulerKind::Fifo, default_width),
    ]
}

/// Solves roots `A`, resumes with `B`, and compares against a fresh session
/// over `A ∪ B` for one configuration. Also checks the resume actually
/// reused work: the incremental solve must not redo the full fixpoint.
fn check_resume_identity(
    bench: &Benchmark,
    extra: &[MethodId],
    config: &AnalysisConfig,
    label: &str,
) {
    let program = &bench.program;

    let mut session = AnalysisSession::builder(program)
        .config(config.clone())
        .roots(bench.roots.iter().copied())
        .build()
        .expect("valid roots");
    session.solve();
    let phase1_steps = session.last_solve_steps();
    session.add_roots(extra.iter().copied()).expect("valid extra roots");
    session.solve();
    let resume_steps = session.last_solve_steps();
    let resumed = session.into_result();

    let union_roots: Vec<MethodId> = bench
        .roots
        .iter()
        .chain(extra.iter())
        .copied()
        .collect();
    let fresh = analyze(program, &union_roots, config);

    assert_results_identical(program, &fresh, &resumed, label);
    let fresh_steps = fresh.stats().steps;
    assert!(
        resume_steps < fresh_steps,
        "{label}: the incremental solve ({resume_steps} steps) must execute fewer steps \
         than the fresh union fixpoint ({fresh_steps}); phase 1 took {phase1_steps}"
    );
}

fn check_spec(spec: &BenchmarkSpec) {
    let bench = build_benchmark(spec);
    let extra = pick_spread_roots(&bench.program, &bench.roots, 12);
    assert!(!extra.is_empty(), "{}: no extra roots to add", spec.name);
    for saturation in [None, Some(3)] {
        for base in [AnalysisConfig::skipflow(), AnalysisConfig::baseline_pta()] {
            for (solver, scheduler, narrow) in solver_matrix() {
                let config = base
                    .clone()
                    .with_solver(solver)
                    .with_scheduler(scheduler)
                    .with_narrow_join_width(narrow)
                    .with_saturation(saturation);
                check_resume_identity(
                    &bench,
                    &extra,
                    &config,
                    &format!(
                        "{}/{}/sat={saturation:?}/{solver:?}/{scheduler:?}/narrow={narrow}",
                        spec.name,
                        base.label()
                    ),
                );
            }
        }
    }
}

#[test]
fn resume_matches_fresh_union_on_quick_corpus_specs() {
    // Two representative quick-corpus shapes (the full sweep per spec covers
    // 2 saturations × 2 configs × 5 solver/scheduler combinations).
    for spec in suites::quick().into_iter().take(2) {
        check_spec(&spec);
    }
}

#[test]
fn resume_matches_fresh_union_on_randomized_specs() {
    for seed in [23u64, 7071] {
        let mut spec = BenchmarkSpec::new("resume-rand", Suite::Renaissance, 150, 0.3);
        spec.seed = seed;
        check_spec(&spec);
    }
}

#[test]
fn resume_matches_fresh_union_under_shared_sink_fanout() {
    // The shared-field fan-out regime: resuming must correctly re-fan-out
    // the sink state to readers reached only through the new roots.
    let spec = BenchmarkSpec::new("resume-fanout", Suite::DaCapo, 80, 0.2).with_shared_sink(40, 16);
    check_spec(&spec);
}

#[test]
fn adaptive_flip_is_sticky_across_resume_and_stays_identical() {
    // Phase 1 runs the shared-sink fan-out regime, so the adaptive
    // scheduler flips FIFO→SCC mid-solve; the resumed solve then continues
    // on the SCC queue (the flip is sticky) and must still reach the same
    // fixpoint as a fresh union run.
    let spec = BenchmarkSpec::new("resume-flip", Suite::DaCapo, 60, 0.0).with_shared_sink(100, 64);
    let bench = build_benchmark(&spec);
    let extra = pick_spread_roots(&bench.program, &bench.roots, 8);
    assert!(!extra.is_empty());

    let config = AnalysisConfig::skipflow(); // Adaptive is the default.
    let mut session = AnalysisSession::builder(&bench.program)
        .config(config.clone())
        .roots(bench.roots.iter().copied())
        .build()
        .unwrap();
    let snap = session.solve();
    assert!(
        snap.stats().scheduler.flips >= 1,
        "phase 1 must flip on the fan-out regime"
    );
    session.add_roots(extra.iter().copied()).unwrap();
    let snap = session.solve();
    assert_eq!(snap.stats().scheduler.flips, 1, "the flip is sticky, not repeated");
    let resumed = session.into_result();

    let union_roots: Vec<MethodId> = bench.roots.iter().chain(&extra).copied().collect();
    let fresh = analyze(&bench.program, &union_roots, &config);
    assert_results_identical(&bench.program, &fresh, &resumed, "resume-flip");
}

#[test]
fn multi_stage_resume_accumulates_roots() {
    // Adding roots one at a time over several resumes equals the one-shot
    // union as well — the invariant composes.
    let spec = BenchmarkSpec::new("resume-stages", Suite::DaCapo, 120, 0.2);
    let bench = build_benchmark(&spec);
    let extra = pick_spread_roots(&bench.program, &bench.roots, 6);
    assert!(extra.len() >= 3);

    let config = AnalysisConfig::skipflow();
    let mut session = AnalysisSession::builder(&bench.program)
        .config(config.clone())
        .roots(bench.roots.iter().copied())
        .build()
        .unwrap();
    session.solve();
    for &m in &extra {
        session.add_roots([m]).unwrap();
        let snapshot = session.solve();
        assert!(snapshot.is_reachable(m), "added root must become reachable");
    }
    assert_eq!(session.solve_count() as usize, 1 + extra.len());
    let resumed = session.into_result();

    let union_roots: Vec<MethodId> = bench.roots.iter().chain(&extra).copied().collect();
    let fresh = analyze(&bench.program, &union_roots, &config);
    assert_results_identical(&bench.program, &fresh, &resumed, "resume-stages");
}

#[test]
fn resume_noop_solve_is_free_and_identical() {
    let spec = BenchmarkSpec::new("resume-noop", Suite::DaCapo, 100, 0.2);
    let bench = build_benchmark(&spec);
    let mut session = AnalysisSession::builder(&bench.program)
        .skipflow()
        .roots(bench.roots.iter().copied())
        .build()
        .unwrap();
    session.solve();
    let first_steps = session.last_solve_steps();
    assert!(first_steps > 0);
    // Solving again without new roots is a no-op…
    session.solve();
    assert_eq!(session.last_solve_steps(), 0, "saturated fixpoint re-solve");
    // …and re-adding known roots stays a no-op.
    assert_eq!(session.add_roots(bench.roots.iter().copied()).unwrap(), 0);
    session.solve();
    assert_eq!(session.last_solve_steps(), 0);
    let resumed = session.into_result();
    let fresh = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());
    assert_results_identical(&bench.program, &fresh, &resumed, "resume-noop");
}

#[test]
fn resumed_solves_report_per_solve_scheduler_stats() {
    // Satellite regression (PR 5): per-solve scheduler statistics must not
    // leak across session resumes. Phase 1 flips on the fan-out regime;
    // the resumed solve stays on the SCC queue (sticky flip) but its
    // per-solve adaptive counters must be *its own* (zero — no FIFO phase
    // ran), while the cumulative totals and the flip event record persist.
    let spec = BenchmarkSpec::new("resume-stats", Suite::DaCapo, 60, 0.0)
        .with_shared_sink(100, 64);
    let bench = build_benchmark(&spec);
    let mut session = AnalysisSession::builder(&bench.program)
        .skipflow() // Adaptive is the default
        .roots(bench.roots.iter().copied())
        .build()
        .unwrap();
    let first = session.solve().stats().scheduler.clone();
    assert_eq!(first.flips, 1, "phase 1 flips on the fan-out regime");
    assert!(first.adaptive_pops > 0 && first.adaptive_re_pops > 0);
    assert_eq!(first.adaptive_pops_total, first.adaptive_pops);
    assert!(
        first.flip_at_step > 0 && first.flip_at_step < session.last_solve_steps(),
        "flip_at_step is relative to the flipping solve"
    );

    let extra = pick_spread_roots(&bench.program, &bench.roots, 8);
    assert!(!extra.is_empty());
    session.add_roots(extra.iter().copied()).unwrap();
    let second = session.solve().stats().scheduler.clone();
    assert!(session.last_solve_steps() > 0, "the resume did real work");
    assert_eq!(second.flips, 1, "the flip is sticky, not repeated");
    assert_eq!(
        (second.adaptive_pops, second.adaptive_re_pops),
        (0, 0),
        "a post-flip solve has no FIFO phase: per-solve counters are its own"
    );
    assert_eq!(
        (second.adaptive_pops_total, second.adaptive_re_pops_total),
        (first.adaptive_pops_total, first.adaptive_re_pops_total),
        "cumulative totals persist unchanged"
    );
    assert_eq!(second.flip_at_step, first.flip_at_step, "flip event record persists");

    // An *unflipped* adaptive session: the per-solve pop counters of a tiny
    // resume must reflect that solve alone, not the first solve's residue,
    // while the totals accumulate across both.
    let spec = BenchmarkSpec::new("resume-stats-acyclic", Suite::DaCapo, 120, 0.2);
    let bench = build_benchmark(&spec);
    let mut session = AnalysisSession::builder(&bench.program)
        .skipflow()
        .roots(bench.roots.iter().copied())
        .build()
        .unwrap();
    let first = session.solve().stats().scheduler.clone();
    assert_eq!(first.flips, 0, "the acyclic corpus never flips");
    assert!(first.adaptive_pops > 0);
    let extra = pick_spread_roots(&bench.program, &bench.roots, 2);
    session.add_roots(extra.iter().copied()).unwrap();
    let second = session.solve().stats().scheduler.clone();
    let resume_steps = session.last_solve_steps();
    assert!(
        second.adaptive_pops <= resume_steps,
        "per-solve pops ({}) must be bounded by the resume's own steps ({resume_steps})",
        second.adaptive_pops
    );
    assert_eq!(
        second.adaptive_pops_total,
        first.adaptive_pops_total + second.adaptive_pops,
        "totals accumulate across solves"
    );
}
