//! Differential validation of non-monotone incrementality: after any
//! sequence of root retractions and method-body edits, re-solving the
//! session must be **bit-identical** (reachable set, instantiated types,
//! per-flow states, liveness, linked targets, metrics) to a fresh analysis
//! of the *surviving* root set under the *current* mask — across the full
//! solver × scheduler matrix, through interrupted re-derivations, and under
//! seeded random edit scripts. This is the weakened checkpoint argument
//! documented at the top of `crates/core/src/engine.rs`.

use skipflow::analysis::{
    analyze, AnalysisConfig, AnalysisSession, MethodEdit, SchedulerKind, SolveOutcome, SolverKind,
};
use skipflow::ir::MethodId;
use skipflow::synth::{
    build_benchmark, build_edit_script, pick_spread_roots, suites, Benchmark, BenchmarkSpec,
    EditOp, Suite,
};

mod common;
use common::assert_results_identical;

/// The solver × scheduler × narrow-join matrix (the reference solver
/// ignores both knobs, so it appears once) — the same coverage the
/// monotone-resume tests use.
fn solver_matrix() -> Vec<(SolverKind, SchedulerKind, usize)> {
    let default_width = AnalysisConfig::skipflow().narrow_join_width();
    vec![
        (SolverKind::Sequential, SchedulerKind::Fifo, default_width),
        (SolverKind::Sequential, SchedulerKind::SccPriority, default_width),
        (SolverKind::Sequential, SchedulerKind::Adaptive, default_width),
        (SolverKind::Sequential, SchedulerKind::Fifo, 0),
        (SolverKind::Sequential, SchedulerKind::Fifo, usize::MAX),
        (SolverKind::Parallel { threads: 4 }, SchedulerKind::Fifo, default_width),
        (SolverKind::Parallel { threads: 4 }, SchedulerKind::SccPriority, default_width),
        (SolverKind::Parallel { threads: 4 }, SchedulerKind::Adaptive, default_width),
        (SolverKind::Reference, SchedulerKind::Fifo, default_width),
    ]
}

fn bench() -> Benchmark {
    build_benchmark(&BenchmarkSpec::new("edits", Suite::DaCapo, 60, 0.2))
}

/// The fresh oracle for a session state: a one-shot analysis of `roots`
/// with `masked` bodies masked from the start.
fn fresh_oracle(
    bench: &Benchmark,
    config: &AnalysisConfig,
    roots: &[MethodId],
    masked: &[MethodId],
) -> skipflow::analysis::AnalysisResult {
    analyze(
        &bench.program,
        roots,
        &config.clone().with_masked_methods(masked.iter().copied()),
    )
}

#[test]
fn retraction_matches_fresh_solve_of_survivors_across_matrix() {
    let bench = bench();
    let extra = pick_spread_roots(&bench.program, &bench.roots, 3);
    assert!(!extra.is_empty());
    for (solver, scheduler, width) in solver_matrix() {
        let config = AnalysisConfig::skipflow()
            .with_solver(solver)
            .with_scheduler(scheduler)
            .with_narrow_join_width(width);
        let label = format!("retract {solver:?}/{scheduler:?}/w{width}");

        let mut session = AnalysisSession::builder(&bench.program)
            .config(config.clone())
            .roots(bench.roots.iter().copied())
            .roots(extra.iter().copied())
            .build()
            .expect("valid roots");
        session.solve();

        // Retract the extras again: the surviving fixpoint must equal a
        // fresh solve that never saw them.
        let removed = session.retract_roots(extra.iter().copied()).unwrap();
        assert_eq!(removed, extra.len(), "{label}");
        assert!(!session.is_up_to_date(), "{label}");
        session.solve();
        let inv = session.snapshot().stats().invalidation;
        assert_eq!(inv.retractions, extra.len() as u64, "{label}");
        assert!(inv.invalidated_flows > 0, "{label}");
        assert!(inv.rederive_steps > 0, "{label}");
        let retracted = session.into_result();
        let fresh = fresh_oracle(&bench, &config, &bench.roots, &[]);
        assert_results_identical(&bench.program, &fresh, &retracted, &label);
    }
}

#[test]
fn edits_match_fresh_solve_under_the_mask_across_matrix() {
    let bench = bench();
    // Edit a method that is actually load-bearing: a reachable concrete
    // non-root method from the baseline solve.
    let probe = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());
    let victim = *probe
        .reachable_methods()
        .iter()
        .find(|&&m| bench.program.method(m).body.is_some() && !bench.roots.contains(&m))
        .expect("a reachable non-root method");
    for (solver, scheduler, width) in solver_matrix() {
        let config = AnalysisConfig::skipflow()
            .with_solver(solver)
            .with_scheduler(scheduler)
            .with_narrow_join_width(width);
        let label = format!("edit {solver:?}/{scheduler:?}/w{width}");

        let mut session = AnalysisSession::builder(&bench.program)
            .config(config.clone())
            .roots(bench.roots.iter().copied())
            .build()
            .expect("valid roots");
        session.solve();

        // Disable → the fixpoint of the masked program.
        assert!(session.apply_edit(victim, MethodEdit::DisableBody).unwrap(), "{label}");
        session.solve();
        {
            let masked_now = session.masked_methods();
            assert_eq!(masked_now, vec![victim], "{label}");
            let fresh = fresh_oracle(&bench, &config, &bench.roots, &masked_now);
            let snap = session.snapshot();
            assert_eq!(
                snap.reachable_methods(),
                fresh.reachable_methods(),
                "{label}: masked reachable sets differ"
            );
            assert_eq!(
                snap.metrics(&bench.program),
                fresh.metrics(&bench.program),
                "{label}: masked metrics differ"
            );
        }

        // Restore → bit-identical to a session that never edited.
        assert!(session.apply_edit(victim, MethodEdit::RestoreBody).unwrap(), "{label}");
        session.solve();
        assert!(session.masked_methods().is_empty(), "{label}");
        let edited = session.into_result();
        assert_eq!(edited.stats().invalidation.edits, 2, "{label}");
        let fresh = fresh_oracle(&bench, &config, &bench.roots, &[]);
        assert_results_identical(&bench.program, &fresh, &edited, &label);
    }
}

#[test]
fn interrupted_rederive_resumes_to_the_retracted_fixpoint() {
    let bench = bench();
    let extra = pick_spread_roots(&bench.program, &bench.roots, 3);
    for (solver, scheduler) in [
        (SolverKind::Sequential, SchedulerKind::Fifo),
        (SolverKind::Sequential, SchedulerKind::SccPriority),
        (SolverKind::Parallel { threads: 4 }, SchedulerKind::Adaptive),
    ] {
        let config = AnalysisConfig::skipflow()
            .with_solver(solver)
            .with_scheduler(scheduler);
        let budgeted = config.clone().with_step_budget(97u64);
        let label = format!("interrupted rederive {solver:?}/{scheduler:?}");

        let mut session = AnalysisSession::builder(&bench.program)
            .config(budgeted)
            .roots(bench.roots.iter().copied())
            .roots(extra.iter().copied())
            .build()
            .expect("valid roots");
        let mut guard = 0;
        while !matches!(
            session.solve_interruptible(None).expect("no hard failure"),
            SolveOutcome::Completed(_)
        ) {
            guard += 1;
            assert!(guard < 10_000, "{label}: budgeted solve never completed");
        }

        session.retract_roots(extra.iter().copied()).unwrap();
        // The re-derivation itself is interrupted every 97 steps; each
        // resume continues from the checkpoint, and the drained fixpoint
        // must still equal the fresh survivors-only solve.
        let mut interrupts = 0;
        while !matches!(
            session.solve_interruptible(None).expect("no hard failure"),
            SolveOutcome::Completed(_)
        ) {
            interrupts += 1;
            assert!(interrupts < 10_000, "{label}: re-derive never completed");
        }
        assert!(interrupts > 0, "{label}: budget never fired during re-derive");
        let retracted = session.into_result();
        let fresh = fresh_oracle(&bench, &config, &bench.roots, &[]);
        assert_results_identical(&bench.program, &fresh, &retracted, &label);
    }
}

/// Applies one [`EditOp`] to a live session, mirroring it in the model.
fn apply_op(
    session: &mut AnalysisSession<'_>,
    roots: &mut Vec<MethodId>,
    masked: &mut Vec<MethodId>,
    op: &EditOp,
) {
    match op {
        EditOp::AddRoots(batch) => {
            session.add_roots(batch.iter().copied()).unwrap();
            roots.extend(batch.iter().copied());
        }
        EditOp::RetractRoots(batch) => {
            let removed = session.retract_roots(batch.iter().copied()).unwrap();
            assert_eq!(removed, batch.len());
            roots.retain(|r| !batch.contains(r));
        }
        EditOp::DisableMethod(m) => {
            assert!(session.apply_edit(*m, MethodEdit::DisableBody).unwrap());
            masked.push(*m);
        }
        EditOp::RestoreMethod(m) => {
            assert!(session.apply_edit(*m, MethodEdit::RestoreBody).unwrap());
            masked.retain(|x| x != m);
        }
        EditOp::Solve => unreachable!("solve points are handled by the driver"),
    }
}

/// Fault-injected variant (`--features fault-inject`): the same random
/// edit-script driver, but with a deterministic [`FaultPlan`] cancelling a
/// solve mid-script (and, on the parallel solver, crashing a worker). The
/// interrupted / degraded session must still converge to the fresh oracle
/// at every solve point — invalidation and interruption compose.
#[cfg(feature = "fault-inject")]
mod fault_sweep {
    use super::*;
    use skipflow::analysis::fault::{FaultPlan, INJECTED_PANIC_MARKER};
    use skipflow::analysis::AnalysisError;
    use std::sync::Once;

    /// Silences expected injected panics (same helper as
    /// `tests/fault_injection.rs`), delegating real failures onward.
    fn install_quiet_panic_hook() {
        static QUIET: Once = Once::new();
        QUIET.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains(INJECTED_PANIC_MARKER))
                    .or_else(|| {
                        info.payload()
                            .downcast_ref::<&str>()
                            .map(|s| s.contains(INJECTED_PANIC_MARKER))
                    })
                    .unwrap_or(false);
                if !injected {
                    prev(info);
                }
            }));
        });
    }

    /// Seeded fault-index generator for the sweep.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn run_script_under_plan(
        bench: &Benchmark,
        seed: u64,
        solver: SolverKind,
        scheduler: SchedulerKind,
        plan: FaultPlan,
        label: &str,
    ) {
        let script = build_edit_script(bench, seed, 10, 2);
        let config = AnalysisConfig::skipflow()
            .with_solver(solver)
            .with_scheduler(scheduler);
        let mut session = AnalysisSession::builder(&bench.program)
            .config(config.clone().with_fault_plan(plan))
            .roots(bench.roots.iter().copied())
            .build()
            .expect("valid roots");
        let mut roots = bench.roots.clone();
        let mut masked: Vec<MethodId> = Vec::new();
        for (i, op) in script.ops.iter().enumerate() {
            if let EditOp::Solve = op {
                let mut spins = 0;
                loop {
                    match session.solve_interruptible(None) {
                        Ok(SolveOutcome::Completed(_)) => break,
                        Ok(SolveOutcome::Interrupted { .. }) => {}
                        // A crashed worker rolls its round back and degrades
                        // the session to sequential solving; keep going.
                        Err(AnalysisError::WorkerPanicked { .. }) => {}
                        Err(e) => panic!("{label} op {i}: unexpected error {e}"),
                    }
                    spins += 1;
                    assert!(spins < 10_000, "{label} op {i}: solve never completed");
                }
                let fresh = fresh_oracle(bench, &config, &roots, &masked);
                let snap = session.snapshot();
                assert_eq!(
                    snap.reachable_methods(),
                    fresh.reachable_methods(),
                    "{label} op {i}: reachable sets differ"
                );
                assert_eq!(
                    snap.metrics(&bench.program),
                    fresh.metrics(&bench.program),
                    "{label} op {i}: metrics differ"
                );
            } else {
                apply_op(&mut session, &mut roots, &mut masked, op);
            }
        }
        let finished = session.into_result();
        let fresh = fresh_oracle(bench, &config, &roots, &masked);
        assert_results_identical(&bench.program, &fresh, &finished, &format!("{label} final"));
    }

    #[test]
    fn edit_scripts_survive_injected_interrupts_and_worker_panics() {
        install_quiet_panic_hook();
        let bench = build_benchmark(&suites::by_name("lusearch").unwrap());
        let mut state = 0xed17_5eedu64;
        for (seed, solver, scheduler) in [
            (21u64, SolverKind::Sequential, SchedulerKind::Fifo),
            (22, SolverKind::Sequential, SchedulerKind::Adaptive),
            (23, SolverKind::Parallel { threads: 4 }, SchedulerKind::SccPriority),
        ] {
            for round in 0..3u32 {
                // A cancel somewhere in the script's cumulative step range;
                // on the parallel solver, also an injected worker panic.
                let plan = FaultPlan {
                    cancel_at_step: Some(lcg(&mut state) % 4000),
                    panic_in_worker_at_round: matches!(solver, SolverKind::Parallel { .. })
                        .then(|| lcg(&mut state) % 8),
                    ..FaultPlan::none()
                };
                let label = format!(
                    "fault script seed {seed} {solver:?}/{scheduler:?} round {round} ({plan:?})"
                );
                run_script_under_plan(&bench, seed, solver, scheduler, plan, &label);
            }
        }
    }
}

#[test]
fn random_edit_scripts_match_fresh_solves_at_every_solve_point() {
    let bench = build_benchmark(&suites::by_name("lusearch").unwrap());
    for (seed, solver, scheduler) in [
        (11u64, SolverKind::Sequential, SchedulerKind::Fifo),
        (12, SolverKind::Sequential, SchedulerKind::SccPriority),
        (13, SolverKind::Sequential, SchedulerKind::Adaptive),
        (14, SolverKind::Parallel { threads: 4 }, SchedulerKind::SccPriority),
        (15, SolverKind::Reference, SchedulerKind::Fifo),
    ] {
        let script = build_edit_script(&bench, seed, 14, 2);
        let config = AnalysisConfig::skipflow()
            .with_solver(solver)
            .with_scheduler(scheduler);
        let mut session = AnalysisSession::builder(&bench.program)
            .config(config.clone())
            .roots(bench.roots.iter().copied())
            .build()
            .expect("valid roots");
        let mut roots = bench.roots.clone();
        let mut masked: Vec<MethodId> = Vec::new();
        for (i, op) in script.ops.iter().enumerate() {
            if let EditOp::Solve = op {
                let label = format!("script seed {seed} {solver:?}/{scheduler:?} op {i}");
                let fresh = fresh_oracle(&bench, &config, &roots, &masked);
                let snap = session.solve();
                assert_eq!(
                    snap.reachable_methods(),
                    fresh.reachable_methods(),
                    "{label}: reachable sets differ"
                );
                assert_eq!(
                    snap.metrics(&bench.program),
                    fresh.metrics(&bench.program),
                    "{label}: metrics differ"
                );
            } else {
                apply_op(&mut session, &mut roots, &mut masked, op);
            }
        }
        // Full observable comparison at the end of the script.
        let mut final_roots = roots.clone();
        let mut expect_roots = script.final_roots.clone();
        final_roots.sort();
        expect_roots.sort();
        assert_eq!(final_roots, expect_roots);
        let finished = session.into_result();
        let fresh = fresh_oracle(&bench, &config, &roots, &masked);
        assert_results_identical(
            &bench.program,
            &fresh,
            &finished,
            &format!("script seed {seed} {solver:?}/{scheduler:?} final"),
        );
    }
}
