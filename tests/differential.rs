//! Differential validation: the reference interpreter executes programs
//! concretely; everything it observes must be covered by the static
//! analysis. This is the strongest soundness evidence in the repository —
//! it runs on hand-written programs, the benchmark corpus, and (via
//! proptest) on randomly generated programs under many input seeds.
//!
//! Checked facts, per run:
//!
//! 1. dynamically executed methods ⊆ statically reachable methods;
//! 2. dynamically instantiated types ⊆ statically instantiated types;
//! 3. every observed parameter value is covered by the static parameter
//!    value state;
//! 4. every observed return value is covered by the static return state.

use proptest::prelude::*;
use skipflow::analysis::{analyze, AnalysisConfig, AnalysisResult, ValueState};
use skipflow::ir::interp::{run, InterpConfig, ObservedValue, Trace, Value};
use skipflow::ir::{MethodId, Program};
use skipflow::synth::{build_benchmark, suites, BenchmarkSpec, Suite};

fn observed_to_state(v: ObservedValue) -> ValueState {
    match v {
        ObservedValue::Int(n) => ValueState::Const(n),
        ObservedValue::Null => ValueState::null(),
        ObservedValue::Obj(t) => ValueState::of_type(t),
    }
}

/// Runs all four soundness checks for one (program, trace, result) triple.
fn check_soundness(program: &Program, trace: &Trace, result: &AnalysisResult, label: &str) {
    for m in &trace.executed_methods {
        assert!(
            result.is_reachable(*m),
            "{label}: executed method {} not statically reachable",
            program.method_label(*m)
        );
    }
    for t in &trace.instantiated {
        assert!(
            result.is_instantiated(*t),
            "{label}: instantiated type {} not statically instantiated",
            program.type_data(*t).name
        );
    }
    for ((m, i), values) in &trace.param_values {
        let state = result
            .param_state(*m, *i)
            .unwrap_or_else(|| panic!("{label}: no param state for executed method"));
        for v in values {
            assert!(
                observed_to_state(*v).le(state),
                "{label}: observed param {v:?} of {}#{i} escapes state {state:?}",
                program.method_label(*m)
            );
        }
    }
    for (m, values) in &trace.return_values {
        let state = result
            .return_state(*m)
            .unwrap_or_else(|| panic!("{label}: no return state for returning method"));
        for v in values {
            assert!(
                observed_to_state(*v).le(state),
                "{label}: observed return {v:?} of {} escapes state {state:?}",
                program.method_label(*m)
            );
        }
    }
}

fn differential(program: &Program, main: MethodId, seeds: &[u64], label: &str) {
    let skipflow = analyze(program, &[main], &AnalysisConfig::skipflow());
    let pta = analyze(program, &[main], &AnalysisConfig::baseline_pta());
    for &seed in seeds {
        let config = InterpConfig {
            seed,
            max_steps: 50_000,
            ..Default::default()
        };
        let trace = run(program, main, &[], &config);
        check_soundness(program, &trace, &skipflow, &format!("{label}/skipflow/seed{seed}"));
        check_soundness(program, &trace, &pta, &format!("{label}/pta/seed{seed}"));
    }
}

#[test]
fn hand_written_programs_are_covered() {
    let sources = [
        (
            "feature-flag",
            "class Config { static method flag(): int { return 0; } }
             class Tracer { static method go(): void { return; } }
             class Main {
               static method main(): void {
                 if (Config.flag()) { Tracer.go(); }
               }
             }",
        ),
        (
            "dispatch-and-fields",
            "abstract class Shape { abstract method area(): int; }
             class Circle extends Shape { method area(): int { return 3; } }
             class Square extends Shape { method area(): int { return 4; } }
             class Holder { var s: Shape; }
             class Main {
               static method main(): int {
                 var h = new Holder();
                 h.s = new Circle();
                 var got = h.s;
                 if (got == null) { return 0; }
                 var x = new Square();
                 return got.area();
               }
             }",
        ),
        (
            "loops-and-any",
            "class Main {
               static method main(): int {
                 var total = 0;
                 var i = 0;
                 while (i < 6) {
                   total = any();
                   i = any();
                 }
                 return total;
               }
             }",
        ),
        (
            "throw-and-recover",
            "class Err { }
             class Main {
               static method boom(c: int): int {
                 if (c > 100) { throw new Err(); }
                 return c;
               }
               static method main(): int {
                 return Main.boom(any());
               }
             }",
        ),
    ];
    for (label, src) in sources {
        let program = skipflow::ir::frontend::compile(src).expect("compiles");
        let main_cls = program.type_by_name("Main").unwrap();
        let main = program.method_by_name(main_cls, "main").unwrap();
        differential(&program, main, &[0, 1, 2, 3, 11, 42], label);
    }
}

#[test]
fn corpus_benchmarks_are_covered() {
    for spec in suites::quick() {
        let bench = build_benchmark(&spec);
        differential(&bench.program, bench.roots[0], &[0, 7], &spec.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random programs, random interpreter seeds: the analysis must cover
    /// every concrete behaviour.
    #[test]
    fn random_programs_are_covered(
        gen_seed in 0u64..1_000_000,
        interp_seed in 0u64..1_000,
        methods in 50usize..160,
        dead in 0.0f64..0.5,
    ) {
        let mut spec = BenchmarkSpec::new("diff", Suite::DaCapo, methods, dead);
        spec.seed = gen_seed;
        let bench = build_benchmark(&spec);
        let program = &bench.program;
        let main = bench.roots[0];

        let skipflow = analyze(program, &[main], &AnalysisConfig::skipflow());
        let config = InterpConfig {
            seed: interp_seed,
            max_steps: 30_000,
            ..Default::default()
        };
        let trace = run(program, main, &[], &config);
        for m in &trace.executed_methods {
            prop_assert!(
                skipflow.is_reachable(*m),
                "executed {} unreachable (outcome {:?})",
                program.method_label(*m),
                trace.outcome
            );
        }
        for t in &trace.instantiated {
            prop_assert!(skipflow.is_instantiated(*t));
        }
        for ((m, i), values) in &trace.param_values {
            let state = skipflow.param_state(*m, *i).expect("state exists");
            for v in values {
                prop_assert!(
                    observed_to_state(*v).le(state),
                    "param {v:?} of {}#{i} escapes {state:?}",
                    program.method_label(*m)
                );
            }
        }
        for (m, values) in &trace.return_values {
            let state = skipflow.return_state(*m).expect("state exists");
            for v in values {
                prop_assert!(
                    observed_to_state(*v).le(state),
                    "return {v:?} of {} escapes {state:?}",
                    program.method_label(*m)
                );
            }
        }
    }

    /// The interpreter itself is deterministic per seed.
    #[test]
    fn interpreter_is_deterministic(gen_seed in 0u64..100_000, interp_seed in 0u64..100) {
        let mut spec = BenchmarkSpec::new("det", Suite::DaCapo, 60, 0.2);
        spec.seed = gen_seed;
        let bench = build_benchmark(&spec);
        let config = InterpConfig { seed: interp_seed, max_steps: 10_000, ..Default::default() };
        let a = run(&bench.program, bench.roots[0], &[], &config);
        let b = run(&bench.program, bench.roots[0], &[], &config);
        prop_assert_eq!(a.outcome, b.outcome);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.executed_methods, b.executed_methods);
    }
}

#[test]
fn interpreter_confirms_the_sunflow_pruning() {
    // The strongest form of the Figure 1 claim: run the program for many
    // seeds — FrameDisplay is *never* actually created, and SkipFlow is the
    // analysis that proves it.
    let src = "
        abstract class Display { abstract method imageBegin(): void; }
        class FileDisplay extends Display { method imageBegin(): void { return; } }
        class FrameDisplay extends Display { method imageBegin(): void { return; } }
        class Scene {
          method render(display: Display): void {
            var d = display;
            if (d == null) { d = new FrameDisplay(); }
            d.imageBegin();
          }
        }
        class Main {
          static method main(): void {
            var s = new Scene();
            s.render(new FileDisplay());
          }
        }
    ";
    let program = skipflow::ir::frontend::compile(src).unwrap();
    let main_cls = program.type_by_name("Main").unwrap();
    let main = program.method_by_name(main_cls, "main").unwrap();
    let frame = program.type_by_name("FrameDisplay").unwrap();

    for seed in 0..20 {
        let trace = run(
            &program,
            main,
            &[],
            &InterpConfig { seed, ..Default::default() },
        );
        assert!(!trace.instantiated.contains(&frame), "runtime never allocates it");
    }
    let skf = analyze(&program, &[main], &AnalysisConfig::skipflow());
    assert!(!skf.is_instantiated(frame), "and SkipFlow proves it");
    let pta = analyze(&program, &[main], &AnalysisConfig::baseline_pta());
    assert!(pta.is_instantiated(frame), "while the baseline cannot");
}

#[test]
fn precision_headroom_against_the_dynamic_truth() {
    // How close is each analysis to the dynamic lower bound? Union the
    // executed-method sets over many seeds — every analysis must cover the
    // union (soundness), and SkipFlow must sit strictly between the dynamic
    // truth and the baseline (the precision the paper buys).
    let spec = suites::by_name("sunflow").unwrap();
    let bench = build_benchmark(&spec);
    let program = &bench.program;
    let main = bench.roots[0];

    let mut executed = std::collections::BTreeSet::new();
    for seed in 0..10u64 {
        let cfg = InterpConfig {
            seed,
            max_steps: 60_000,
            ..Default::default()
        };
        executed.extend(run(program, main, &[], &cfg).executed_methods);
    }
    let skf = analyze(program, &bench.roots, &AnalysisConfig::skipflow());
    let pta = analyze(program, &bench.roots, &AnalysisConfig::baseline_pta());

    assert!(executed.iter().all(|m| skf.is_reachable(*m)));
    let dynamic = executed.len();
    let s = skf.reachable_methods().len();
    let p = pta.reachable_methods().len();
    assert!(
        dynamic <= s && s < p,
        "dynamic {dynamic} ≤ SkipFlow {s} < PTA {p}"
    );
    // On the Sunflow shape, SkipFlow recovers a large share of the gap
    // between the baseline and the dynamic truth.
    let recovered = (p - s) as f64 / (p - dynamic) as f64;
    assert!(
        recovered > 0.5,
        "SkipFlow should close most of the precision gap: {recovered:.2} \
         (dynamic {dynamic}, SkipFlow {s}, PTA {p})"
    );
}

#[test]
fn value_observation_helpers_cover_all_shapes() {
    assert_eq!(observed_to_state(ObservedValue::Int(5)), ValueState::Const(5));
    assert_eq!(observed_to_state(ObservedValue::Null), ValueState::null());
    let _ = Value::null();
}
