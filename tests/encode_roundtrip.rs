//! Round-trip properties of the `SFBC` binary program format, driven by the
//! workload generator: encode → decode must preserve structure, printed
//! form, interpreter behaviour, and analysis results.

use proptest::prelude::*;
use skipflow::analysis::{analyze, AnalysisConfig};
use skipflow::ir::encode::{decode, encode};
use skipflow::ir::interp::{run, InterpConfig};
use skipflow::ir::printer::print_program;
use skipflow::synth::{build_benchmark, BenchmarkSpec, Suite};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn roundtrip_preserves_everything(
        seed in 0u64..1_000_000,
        methods in 40usize..140,
        dead in 0.0f64..0.5,
    ) {
        let mut spec = BenchmarkSpec::new("rt", Suite::DaCapo, methods, dead);
        spec.seed = seed;
        let bench = build_benchmark(&spec);
        let original = &bench.program;

        let bytes = encode(original);
        let decoded = decode(&bytes).expect("valid bytes decode");

        // Structure and printed form.
        prop_assert_eq!(original.type_count(), decoded.type_count());
        prop_assert_eq!(original.method_count(), decoded.method_count());
        prop_assert_eq!(print_program(original), print_program(&decoded));

        // Interpreter behaviour.
        let main = bench.roots[0];
        let cfg = InterpConfig { seed: 5, max_steps: 20_000, ..Default::default() };
        let a = run(original, main, &[], &cfg);
        let b = run(&decoded, main, &[], &cfg);
        prop_assert_eq!(a.outcome, b.outcome);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(&a.executed_methods, &b.executed_methods);

        // Analysis results.
        let ra = analyze(original, &bench.roots, &AnalysisConfig::skipflow());
        let rb = analyze(&decoded, &bench.roots, &AnalysisConfig::skipflow());
        prop_assert_eq!(ra.reachable_methods(), rb.reachable_methods());
        prop_assert_eq!(ra.metrics(original), rb.metrics(&decoded));
    }

    /// Mutated streams never panic the decoder.
    #[test]
    fn decoder_is_panic_free_under_mutation(
        seed in 0u64..10_000,
        mutation_byte in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let mut spec = BenchmarkSpec::new("fuzz", Suite::DaCapo, 40, 0.2);
        spec.seed = seed;
        let bench = build_benchmark(&spec);
        let mut bytes = encode(&bench.program);
        if bytes.is_empty() { return Ok(()); }
        let idx = mutation_byte % bytes.len();
        bytes[idx] ^= xor;
        let _ = decode(&bytes); // must not panic; Err is fine
    }
}

#[test]
fn encoding_is_deterministic_and_compact() {
    let spec = BenchmarkSpec::new("det", Suite::DaCapo, 100, 0.3);
    let bench = build_benchmark(&spec);
    let a = encode(&bench.program);
    let b = encode(&bench.program);
    assert_eq!(a, b, "same program, same bytes");
    // Sanity: the binary form is smaller than the printed form.
    let printed = print_program(&bench.program).len();
    assert!(
        a.len() < printed,
        "binary ({}) should beat text ({printed})",
        a.len()
    );
}
