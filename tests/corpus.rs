//! Cross-crate integration tests over the generated corpus: calibration,
//! the precision ladder, solver determinism, and metric monotonicity.

use skipflow::analysis::{analyze, AnalysisConfig, CallGraphQuery, SolverKind};
use skipflow::baselines::{class_hierarchy_analysis, rapid_type_analysis};
use skipflow::synth::{build_benchmark, suites};

#[test]
fn quick_suite_reductions_track_calibration() {
    for spec in suites::quick() {
        let bench = build_benchmark(&spec);
        let pta = analyze(&bench.program, &bench.roots, &AnalysisConfig::baseline_pta());
        let skf = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());
        let reduction = 1.0
            - skf.reachable_methods().len() as f64 / pta.reachable_methods().len() as f64;
        assert!(
            (reduction - spec.dead_fraction).abs() < 0.06,
            "{}: reduction {reduction:.3} vs calibrated {:.3}",
            spec.name,
            spec.dead_fraction
        );
    }
}

#[test]
fn precision_ladder_holds_on_generated_programs() {
    for spec in suites::quick() {
        let bench = build_benchmark(&spec);
        let cha = class_hierarchy_analysis(&bench.program, &bench.roots);
        let rta = rapid_type_analysis(&bench.program, &bench.roots);
        let pta = analyze(&bench.program, &bench.roots, &AnalysisConfig::baseline_pta());
        let skf = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());
        // The unified CallGraphQuery interface spans the whole ladder.
        assert!(rta.refines(&cha), "{}", spec.name);
        assert!(pta.refines(&rta), "{}", spec.name);
        assert!(skf.refines(&pta), "{}", spec.name);
    }
}

#[test]
fn parallel_solver_is_bit_identical_on_the_corpus() {
    let spec = suites::by_name("sunflow").unwrap();
    let bench = build_benchmark(&spec);
    let seq = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());
    for threads in [2, 8] {
        let par = analyze(
            &bench.program,
            &bench.roots,
            &AnalysisConfig::skipflow().with_solver(SolverKind::Parallel { threads }),
        );
        assert_eq!(seq.reachable_methods(), par.reachable_methods());
        assert_eq!(seq.metrics(&bench.program), par.metrics(&bench.program));
    }
}

#[test]
fn all_metrics_improve_or_hold_under_skipflow() {
    // The paper's Table 1: SkipFlow improves every metric (apart from
    // analysis time) on every benchmark.
    for spec in suites::quick() {
        let bench = build_benchmark(&spec);
        let p = analyze(&bench.program, &bench.roots, &AnalysisConfig::baseline_pta())
            .metrics(&bench.program);
        let s = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow())
            .metrics(&bench.program);
        assert!(s.reachable_methods <= p.reachable_methods, "{}", spec.name);
        assert!(s.type_checks <= p.type_checks, "{}", spec.name);
        assert!(s.null_checks <= p.null_checks, "{}", spec.name);
        assert!(s.prim_checks <= p.prim_checks, "{}", spec.name);
        assert!(s.poly_calls <= p.poly_calls, "{}", spec.name);
        assert!(s.binary_size_bytes <= p.binary_size_bytes, "{}", spec.name);
    }
}

#[test]
fn ablations_order_by_precision() {
    // predicates-only sits between PTA and full SkipFlow; primitives-only
    // cannot prune reachability at all (primitives only matter through
    // predicate edges).
    let spec = suites::by_name("sunflow").unwrap();
    let bench = build_benchmark(&spec);
    let pta = analyze(&bench.program, &bench.roots, &AnalysisConfig::baseline_pta());
    let pred = analyze(&bench.program, &bench.roots, &AnalysisConfig::predicates_only());
    let prim = analyze(&bench.program, &bench.roots, &AnalysisConfig::primitives_only());
    let full = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());

    assert_eq!(
        prim.reachable_methods().len(),
        pta.reachable_methods().len(),
        "primitives without predicates cannot remove methods"
    );
    assert!(pred.reachable_methods().is_subset(pta.reachable_methods()));
    assert!(full.reachable_methods().is_subset(pred.reachable_methods()));
    assert!(
        full.reachable_methods().len() < pred.reachable_methods().len(),
        "const-flag and type-test guards need primitive tracking on top of predicates"
    );
}

#[test]
fn reflective_roots_extend_reachability() {
    // Spark-shaped specs expose reflective entries; registering them must
    // only ever add reachable methods.
    let spec = suites::by_name("als").unwrap();
    let bench = build_benchmark(&spec);
    assert!(!bench.reflective_roots.is_empty(), "als has a reflective surface");
    let plain = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());
    let config =
        AnalysisConfig::skipflow().with_reflective_roots(bench.reflective_roots.iter().copied());
    let with_reflection = analyze(&bench.program, &bench.roots, &config);
    assert!(plain
        .reachable_methods()
        .is_subset(with_reflection.reachable_methods()));
    for r in &bench.reflective_roots {
        assert!(with_reflection.is_reachable(*r));
    }
}
