//! The paper's suite-level claims, asserted as bands over the DaCapo-shaped
//! block (the fastest suite that contains the headline outlier):
//!
//! * reachable methods reduced by max ≈ 52.3 %, min ≈ 3.5 %, avg ≈ 13.3 %;
//! * every counter metric improves on every benchmark;
//! * SkipFlow's reachable set is always a subset of PTA's.

use skipflow::analysis::{analyze, AnalysisConfig};
use skipflow::synth::{build_benchmark, suites};

#[test]
fn dacapo_reduction_bands_match_the_paper() {
    let mut reductions = Vec::new();
    for spec in suites::dacapo() {
        let bench = build_benchmark(&spec);
        let pta = analyze(&bench.program, &bench.roots, &AnalysisConfig::baseline_pta());
        let skf = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());
        assert!(skf.reachable_methods().is_subset(pta.reachable_methods()));
        let r = 1.0
            - skf.reachable_methods().len() as f64 / pta.reachable_methods().len() as f64;
        reductions.push((spec.name.clone(), r));
    }
    let max = reductions.iter().map(|(_, r)| *r).fold(0.0, f64::max);
    let min = reductions.iter().map(|(_, r)| *r).fold(1.0, f64::min);
    let avg = reductions.iter().map(|(_, r)| *r).sum::<f64>() / reductions.len() as f64;

    // Paper (Table 1, DaCapo block): max 52.3 %, min 3.5 %, avg 13.3 %.
    assert!((max - 0.523).abs() < 0.05, "max {max:.3} vs paper 0.523");
    assert!((min - 0.035).abs() < 0.03, "min {min:.3} vs paper 0.035");
    assert!((avg - 0.133).abs() < 0.03, "avg {avg:.3} vs paper 0.133");

    // The outlier is Sunflow, as in the paper.
    let (outlier, _) = reductions
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    assert_eq!(outlier, "sunflow");
}

#[test]
fn every_metric_improves_on_every_dacapo_benchmark() {
    // Table 1's caption: "Even for the grey rows, SkipFlow still improves
    // over the baseline in all metrics apart from analysis time."
    for spec in suites::dacapo() {
        let bench = build_benchmark(&spec);
        let p = analyze(&bench.program, &bench.roots, &AnalysisConfig::baseline_pta())
            .metrics(&bench.program);
        let s = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow())
            .metrics(&bench.program);
        assert!(s.reachable_methods < p.reachable_methods, "{}", spec.name);
        assert!(s.type_checks <= p.type_checks, "{}", spec.name);
        assert!(s.null_checks <= p.null_checks, "{}", spec.name);
        assert!(s.prim_checks <= p.prim_checks, "{}", spec.name);
        assert!(s.poly_calls <= p.poly_calls, "{}", spec.name);
        assert!(s.binary_size_bytes < p.binary_size_bytes, "{}", spec.name);
    }
}

#[test]
fn counter_metrics_track_reachable_methods() {
    // §6: "The counter metrics follow a similar trend."
    for spec in [suites::by_name("sunflow").unwrap(), suites::by_name("xalan").unwrap()] {
        let bench = build_benchmark(&spec);
        let p = analyze(&bench.program, &bench.roots, &AnalysisConfig::baseline_pta())
            .metrics(&bench.program);
        let s = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow())
            .metrics(&bench.program);
        let method_red = 1.0 - s.reachable_methods as f64 / p.reachable_methods as f64;
        for (name, before, after) in [
            ("null", p.null_checks, s.null_checks),
            ("prim", p.prim_checks, s.prim_checks),
        ] {
            let red = 1.0 - after as f64 / before as f64;
            assert!(
                (red - method_red).abs() < 0.25,
                "{}: {name}-check reduction {red:.2} far from method reduction {method_red:.2}",
                spec.name
            );
        }
    }
}
