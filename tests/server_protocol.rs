//! End-to-end smoke test of `skipflow serve`: spawn the real binary on an
//! ephemeral loopback port, drive the line protocol over TCP, and check the
//! server exits cleanly on `shutdown`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

const SRC: &str = "
    class Config { static method flag(): int { return 0; } }
    class App {
      static method used(): void { return; }
      static method dead(): void { return; }
      static method main(): void {
        if (Config.flag()) { App.dead(); } else { App.used(); }
      }
    }
";

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skipflow-serve-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn connect(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect to server");
        stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let writer = stream.try_clone().unwrap();
        Conn { reader: BufReader::new(stream), writer }
    }

    fn request(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("send request");
        self.writer.flush().unwrap();
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        resp.trim_end().to_string()
    }
}

#[test]
fn serve_loopback_round_trip() {
    let dir = tmpdir("roundtrip");
    let src_path = dir.join("app.sf");
    std::fs::write(&src_path, SRC).unwrap();

    // Port 0 → the kernel picks; the server prints the bound address.
    let mut child = Command::new(env!("CARGO_BIN_EXE_skipflow"))
        .args(["serve", "--addr", "127.0.0.1:0", "--max-sessions", "4"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn skipflow serve");
    let mut line = String::new();
    BufReader::new(child.stdout.take().unwrap())
        .read_line(&mut line)
        .expect("read listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .to_string();

    let mut conn = Conn::connect(&addr);
    assert_eq!(conn.request("ping"), "ok pong");

    // Open from a source file, register a root, settle, query.
    let opened = conn.request(&format!("open app {}", src_path.display()));
    assert!(opened.starts_with("ok opened app methods="), "{opened}");
    assert_eq!(conn.request("roots app App.main"), "ok queued 1 epoch=0");
    let flushed = conn.request("flush app");
    assert!(flushed.starts_with("ok flushed epoch="), "{flushed}");
    assert!(!flushed.contains("[partial]"), "{flushed}");
    assert!(conn.request("query app reachable App.used").starts_with("ok true epoch="), "reachable");
    assert!(conn.request("query app reachable App.dead").starts_with("ok false epoch="), "dead");
    assert!(conn.request("query app completeness").starts_with("ok complete epoch="));

    // A second session from the generated corpus, sharing the server.
    let opened = conn.request("open bench synth:luindex scheduler=adaptive");
    assert!(opened.starts_with("ok opened bench methods="), "{opened}");
    let sessions = conn.request("sessions");
    assert!(sessions.starts_with("ok sessions=2"), "{sessions}");

    // Errors come back as single `err` lines, never by dropping the
    // connection.
    assert!(conn.request("open app {}").starts_with("err duplicate-session:"));
    assert!(conn.request("roots nope App.main").starts_with("err unknown-session:"));
    assert!(conn.request("bogus-verb").starts_with("err proto:"));

    // Stats render for the registry and per session.
    let stats = conn.request("stats");
    assert!(stats.contains("sessions_live=2") && stats.contains("memory_bytes="), "{stats}");
    let sstats = conn.request("stats app");
    assert!(sstats.contains("epochs_published=") && sstats.contains("queries="), "{sstats}");

    // A second client sees the same published state (epoch publication is
    // per-session, not per-connection).
    let mut conn2 = Conn::connect(&addr);
    assert!(conn2.request("query app reachable-count").starts_with("ok "), "second client");

    assert_eq!(conn.request("evict bench"), "ok evicted");
    assert!(conn.request("sessions").starts_with("ok sessions=1"), "bench evicted");

    assert_eq!(conn.request("shutdown"), "ok bye");
    let status = child.wait().expect("server exit");
    assert!(status.success(), "server exited with {status:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
