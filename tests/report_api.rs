//! Coverage for the result/report API surface: statement-level states,
//! call-site info, dead-code reports, and solver statistics.

use skipflow::analysis::{analyze, AnalysisConfig, CallKind, ValueState};
use skipflow::ir::frontend::compile;
use skipflow::ir::BlockId;

fn fixture() -> (skipflow::ir::Program, skipflow::analysis::AnalysisResult) {
    let program = compile(
        "abstract class Shape { abstract method area(): int; }
         class Circle extends Shape { method area(): int { return 3; } }
         class Square extends Shape { method area(): int { return 4; } }
         class Main {
           static method compute(s: Shape): int { return s.area(); }
           static method guarded(): void {
             var flag = 0;
             if (flag == 1) {
               var c = new Square();
               Main.compute(c);
             }
           }
           static method main(): int {
             Main.guarded();
             return Main.compute(new Circle());
           }
         }",
    )
    .unwrap();
    let main_cls = program.type_by_name("Main").unwrap();
    let main = program.method_by_name(main_cls, "main").unwrap();
    let result = analyze(&program, &[main], &AnalysisConfig::skipflow());
    (program, result)
}

#[test]
fn stmt_level_states_are_queryable() {
    let (program, result) = fixture();
    let main_cls = program.type_by_name("Main").unwrap();
    let main = program.method_by_name(main_cls, "main").unwrap();
    // Statement 0 of the entry block is the static call to guarded().
    let s = result.stmt_state(main, BlockId::ENTRY, 0).expect("exists");
    assert!(s.is_non_empty(), "guarded() returns (void token)");
    assert_eq!(result.stmt_enabled(main, BlockId::ENTRY, 0), Some(true));
    // Out-of-range queries answer None, not panic.
    assert!(result.stmt_state(main, BlockId::from_index(99), 0).is_none());
    assert!(result.stmt_state(main, BlockId::ENTRY, 99).is_none());
}

#[test]
fn call_sites_expose_kinds_targets_and_liveness() {
    let (program, result) = fixture();
    let main_cls = program.type_by_name("Main").unwrap();
    let compute = program.method_by_name(main_cls, "compute").unwrap();
    let sites = result.call_sites(compute);
    assert_eq!(sites.len(), 1);
    assert_eq!(sites[0].kind, CallKind::Virtual);
    // Only Circle is instantiated (Square is behind the dead guard).
    let circle = program.type_by_name("Circle").unwrap();
    let circle_area = program.method_by_name(circle, "area").unwrap();
    assert_eq!(sites[0].targets, vec![circle_area]);
    assert!(sites[0].enabled);
    // And the devirtualization report agrees.
    assert_eq!(result.devirtualized_sites(compute), vec![(sites[0].site, circle_area)]);
}

#[test]
fn dead_code_report_mentions_dead_blocks_and_devirt() {
    let (program, result) = fixture();
    let main_cls = program.type_by_name("Main").unwrap();
    let guarded = program.method_by_name(main_cls, "guarded").unwrap();
    let report = result.dead_code_report(&program, guarded);
    assert!(report.contains("dead blocks"), "{report}");

    let square = program.type_by_name("Square").unwrap();
    let square_area = program.method_by_name(square, "area").unwrap();
    let report = result.dead_code_report(&program, square_area);
    assert!(report.contains("unreachable"), "{report}");
}

#[test]
fn allocation_enabled_distinguishes_guarded_news() {
    let (program, result) = fixture();
    assert!(result.allocation_enabled(program.type_by_name("Circle").unwrap()));
    assert!(!result.allocation_enabled(program.type_by_name("Square").unwrap()));
}

#[test]
fn stats_expose_graph_shape() {
    let (_, result) = fixture();
    let stats = result.stats();
    assert!(stats.flows > 10);
    assert!(stats.use_edges > 0);
    assert!(stats.pred_edges > 0);
    assert!(stats.obs_edges > 0);
    assert!(stats.steps > 0);
}

#[test]
fn compute_returns_exactly_the_circle_constant() {
    let (program, result) = fixture();
    let main_cls = program.type_by_name("Main").unwrap();
    let compute = program.method_by_name(main_cls, "compute").unwrap();
    assert_eq!(result.return_state(compute), Some(&ValueState::Const(3)));
}

#[test]
fn call_graph_edges_and_dot() {
    let (program, result) = fixture();
    let edges = result.call_graph_edges();
    // main → guarded (static), main → compute (static),
    // compute → Circle.area (virtual). The guarded branch's call to compute
    // is dead, so no edge from guarded.
    let main_cls = program.type_by_name("Main").unwrap();
    let compute = program.method_by_name(main_cls, "compute").unwrap();
    let guarded = program.method_by_name(main_cls, "guarded").unwrap();
    let circle_area = program
        .method_by_name(program.type_by_name("Circle").unwrap(), "area")
        .unwrap();
    assert!(edges.iter().any(|e| e.callee == compute && e.kind == CallKind::Static));
    assert!(edges.iter().any(|e| e.caller == compute && e.callee == circle_area));
    assert!(
        !edges.iter().any(|e| e.caller == guarded && e.callee == compute),
        "the call inside the dead branch must not appear"
    );

    let dot = result.call_graph_dot(&program);
    assert!(dot.contains("digraph callgraph"));
    assert!(dot.contains("Main.compute"));
    assert!(dot.contains("Circle.area"));
}

#[test]
#[should_panic(expected = "max_steps")]
fn max_steps_guard_fires() {
    let program = compile(
        "class Main { static method main(): int { return 1; } }",
    )
    .unwrap();
    let main_cls = program.type_by_name("Main").unwrap();
    let main = program.method_by_name(main_cls, "main").unwrap();
    let config = AnalysisConfig::skipflow().with_max_steps(1);
    let _ = analyze(&program, &[main], &config);
}
