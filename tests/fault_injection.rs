//! The fault-injection differential family (`--features fault-inject`).
//!
//! The deterministic, step-indexed [`FaultPlan`] drives the interrupt paths
//! no public API can reach exactly: a cancel firing at worklist step `k`, a
//! budget exhausting at step `k`, and a phase-A worker panicking inside a
//! chosen parallel round. Each family proves the robustness contract:
//! interrupt → resume is **bit-identical** to an uninterrupted solve, and a
//! panicked worker degrades the session to sequential solving without
//! poisoning any state.

#![cfg(feature = "fault-inject")]

use skipflow::analysis::fault::{FaultPlan, INJECTED_PANIC_MARKER};
use skipflow::analysis::{
    analyze, AnalysisConfig, AnalysisError, AnalysisSession, CallGraphQuery, Completeness,
    InterruptReason, SchedulerKind, SolveOutcome, SolverKind,
};
use skipflow::synth::{build_benchmark, Benchmark, BenchmarkSpec, Suite};
use std::sync::Once;

mod common;
use common::assert_results_identical;

/// Silences the expected injected-panic reports (recognized by
/// [`INJECTED_PANIC_MARKER`] in the payload) while delegating every other
/// panic to the previous hook, so a *real* failure still prints. Installed
/// once per test binary.
fn install_quiet_panic_hook() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains(INJECTED_PANIC_MARKER))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.contains(INJECTED_PANIC_MARKER))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

fn bench() -> Benchmark {
    build_benchmark(&BenchmarkSpec::new("fault", Suite::DaCapo, 60, 0.2))
}

fn session_with_plan<'p>(
    bench: &'p Benchmark,
    config: &AnalysisConfig,
    plan: FaultPlan,
) -> AnalysisSession<'p> {
    AnalysisSession::builder(&bench.program)
        .config(config.clone().with_fault_plan(plan))
        .roots(bench.roots.iter().copied())
        .build()
        .expect("valid roots")
}

fn matrix() -> Vec<(SolverKind, SchedulerKind)> {
    vec![
        (SolverKind::Sequential, SchedulerKind::Fifo),
        (SolverKind::Sequential, SchedulerKind::SccPriority),
        (SolverKind::Sequential, SchedulerKind::Adaptive),
        (SolverKind::Parallel { threads: 4 }, SchedulerKind::Fifo),
        (SolverKind::Parallel { threads: 4 }, SchedulerKind::SccPriority),
        (SolverKind::Parallel { threads: 4 }, SchedulerKind::Adaptive),
        (SolverKind::Reference, SchedulerKind::Fifo),
    ]
}

#[test]
fn cancel_at_every_step_resumes_bit_identical() {
    let bench = bench();
    for (solver, scheduler) in matrix() {
        let config = AnalysisConfig::skipflow()
            .with_solver(solver)
            .with_scheduler(scheduler);
        let oracle = analyze(&bench.program, &bench.roots, &config);
        let total = oracle.stats().steps;
        let stride = (total / 32).max(1);
        // Interrupt at every step index along the sweep (subsampled beyond
        // the dense low range), resume, and demand the identical fixpoint.
        for k in (0..=16).chain((17..total).step_by(stride as usize)) {
            let label = format!("cancel/{solver:?}/{scheduler:?}/k={k}");
            let plan = FaultPlan {
                cancel_at_step: Some(k),
                ..FaultPlan::none()
            };
            let mut session = session_with_plan(&bench, &config, plan);
            match session.solve_interruptible(None).expect("no hard failure") {
                SolveOutcome::Interrupted { reason, partial } => {
                    assert_eq!(reason, InterruptReason::Cancelled, "{label}");
                    assert_eq!(partial.completeness(), Completeness::Partial);
                    // The injection ignores the production stride, so the
                    // interrupt lands exactly at step k.
                    assert_eq!(partial.stats().steps, k, "{label}");
                    assert!(partial.refines(&oracle), "{label}");
                }
                SolveOutcome::Completed(_) => panic!("{label}: injection did not fire"),
            }
            // The trigger was consumed: the resume runs to completion (the
            // step *count* may differ from the oracle — an interrupted
            // parallel round re-enqueues its tail, changing the processing
            // order — but the fixpoint below may not).
            assert!(!session.solve_interruptible(None).unwrap().is_interrupted(), "{label}");
            let resumed = session.into_result();
            assert_results_identical(&bench.program, &oracle, &resumed, &label);
        }
    }
}

#[test]
fn budget_exhaust_injection_exercises_the_budget_path() {
    let bench = bench();
    let config = AnalysisConfig::skipflow();
    let oracle = analyze(&bench.program, &bench.roots, &config);
    let total = oracle.stats().steps;
    for k in [0, 1, total / 2, total - 1] {
        let label = format!("budget-inject/k={k}");
        let plan = FaultPlan {
            budget_exhaust_at_step: Some(k),
            ..FaultPlan::none()
        };
        let mut session = session_with_plan(&bench, &config, plan);
        // Through the completion-only API the injected exhaustion surfaces
        // as the structured Interrupted error…
        match session.try_solve() {
            Err(AnalysisError::Interrupted {
                reason: InterruptReason::StepBudget { budget },
            }) => assert_eq!(budget, k, "{label}"),
            other => panic!("{label}: expected Interrupted, got {other:?}"),
        }
        // …and the retained checkpoint completes to the identical fixpoint.
        session.try_solve().unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
        let resumed = session.into_result();
        assert_results_identical(&bench.program, &oracle, &resumed, &label);
    }
}

#[test]
fn worker_panic_rolls_back_degrades_and_recovers_identically() {
    install_quiet_panic_hook();
    let bench = bench();
    for scheduler in [
        SchedulerKind::Fifo,
        SchedulerKind::SccPriority,
        SchedulerKind::Adaptive,
    ] {
        for round in [0u64, 1, 3] {
            let label = format!("panic/{scheduler:?}/round={round}");
            let config = AnalysisConfig::skipflow()
                .with_solver(SolverKind::Parallel { threads: 4 })
                .with_scheduler(scheduler);
            let oracle = analyze(&bench.program, &bench.roots, &config);
            let plan = FaultPlan {
                panic_in_worker_at_round: Some(round),
                ..FaultPlan::none()
            };
            let mut session = session_with_plan(&bench, &config, plan);
            let err = session
                .solve_interruptible(None)
                .expect_err(&format!("{label}: the injected panic must surface"));
            match &err {
                AnalysisError::WorkerPanicked { payload, .. } => {
                    assert!(
                        payload.message().contains(INJECTED_PANIC_MARKER),
                        "{label}: {payload}"
                    );
                    use std::error::Error as _;
                    assert_eq!(
                        err.source().unwrap().to_string(),
                        payload.message(),
                        "{label}"
                    );
                }
                other => panic!("{label}: expected WorkerPanicked, got {other}"),
            }
            // The round was rolled back and the session degraded — it keeps
            // working, sequentially, and reaches the identical fixpoint.
            assert!(session.is_degraded(), "{label}");
            match session.solve_interruptible(None).unwrap() {
                SolveOutcome::Completed(snap) => {
                    assert_eq!(snap.stats().interrupt.worker_panics, 1, "{label}");
                }
                SolveOutcome::Interrupted { reason, .. } => {
                    panic!("{label}: unexpected interrupt {reason}")
                }
            }
            assert!(session.is_degraded(), "{label}: degradation is sticky");
            let recovered = session.into_result();
            assert_results_identical(&bench.program, &oracle, &recovered, &label);
        }
    }
}

#[test]
fn degraded_session_still_resumes_and_answers_the_plain_solve_api() {
    install_quiet_panic_hook();
    // Misuse-path check: after a worker panic, every ordinary entry point —
    // `solve()`, `try_solve()`, `add_roots` + resume — must behave normally
    // on the degraded (now sequential) session.
    let bench = bench();
    let config = AnalysisConfig::skipflow().with_solver(SolverKind::Parallel { threads: 4 });
    let oracle = analyze(&bench.program, &bench.roots, &config);
    let plan = FaultPlan {
        panic_in_worker_at_round: Some(0),
        ..FaultPlan::none()
    };
    let mut session = session_with_plan(&bench, &config, plan);
    assert!(matches!(
        session.try_solve(),
        Err(AnalysisError::WorkerPanicked { .. })
    ));
    assert!(session.is_degraded());
    // The panicking-on-error `solve()` API works on a degraded session: the
    // degradation is a mode switch, not an error state.
    let snap = session.solve();
    assert_eq!(snap.completeness(), Completeness::Complete);
    assert_eq!(snap.stats().interrupt.worker_panics, 1);
    let recovered = session.into_result();
    assert_results_identical(&bench.program, &oracle, &recovered, "degraded-plain-solve");
}

#[test]
fn unfired_injections_do_not_perturb_the_solve() {
    // A plan aimed beyond the solve (step index past the fixpoint, round
    // index past the last round) never fires and never changes the result.
    let bench = bench();
    for (solver, scheduler) in [
        (SolverKind::Sequential, SchedulerKind::Adaptive),
        (SolverKind::Parallel { threads: 4 }, SchedulerKind::SccPriority),
    ] {
        let config = AnalysisConfig::skipflow()
            .with_solver(solver)
            .with_scheduler(scheduler);
        let oracle = analyze(&bench.program, &bench.roots, &config);
        let plan = FaultPlan {
            cancel_at_step: Some(u64::MAX),
            budget_exhaust_at_step: Some(u64::MAX),
            panic_in_worker_at_round: Some(u64::MAX),
        };
        let mut session = session_with_plan(&bench, &config, plan);
        assert!(!session.solve_interruptible(None).unwrap().is_interrupted());
        let result = session.into_result();
        assert_results_identical(&bench.program, &oracle, &result, "unfired-plan");
    }
}

#[test]
fn seeded_random_interrupt_sweep_is_bit_identical() {
    // The smoke sweep CI runs: a seeded LCG picks (configuration, interrupt
    // step) pairs; every draw must resume to the oracle fixpoint.
    install_quiet_panic_hook();
    let bench = bench();
    let grid = matrix();
    let mut state: u64 = 0x5eed_cafe_f00d_0001;
    let mut lcg = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for draw in 0..24 {
        let (solver, scheduler) = grid[(lcg() % grid.len() as u64) as usize];
        let config = AnalysisConfig::skipflow()
            .with_solver(solver)
            .with_scheduler(scheduler);
        let oracle = analyze(&bench.program, &bench.roots, &config);
        let k = lcg() % oracle.stats().steps;
        let label = format!("seeded/{draw}/{solver:?}/{scheduler:?}/k={k}");
        let plan = FaultPlan {
            cancel_at_step: Some(k),
            ..FaultPlan::none()
        };
        let mut session = session_with_plan(&bench, &config, plan);
        let outcome = session.solve_interruptible(None).expect("no hard failure");
        assert!(outcome.is_interrupted(), "{label}");
        assert!(!session.solve_interruptible(None).unwrap().is_interrupted(), "{label}");
        let resumed = session.into_result();
        assert_results_identical(&bench.program, &oracle, &resumed, &label);
    }
}
