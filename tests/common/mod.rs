//! Shared helpers for the differential integration tests: full observable
//! comparison of two analysis results (used by `delta_vs_reference.rs` for
//! solver/scheduler identity and by `session_resume.rs` for the
//! incremental-resume identity).

use skipflow::analysis::AnalysisResult;
use skipflow::ir::Program;

/// Asserts every observable outcome of `b` equals `a` (the reference): the
/// reachable set, instantiated types, per-method value states, liveness,
/// dead-branch reports, linked call targets, and the counter metrics.
///
/// Results are compared per method rather than per flow id: the solvers may
/// discover methods in different orders, which permutes flow ids, but every
/// observable outcome must match exactly.
pub fn assert_results_identical(
    program: &Program,
    a: &AnalysisResult,
    b: &AnalysisResult,
    label: &str,
) {
    assert_eq!(
        a.reachable_methods(),
        b.reachable_methods(),
        "{label}: reachable sets differ"
    );
    for t in 0..program.type_count() {
        let t = skipflow::ir::TypeId::from_index(t);
        assert_eq!(
            a.is_instantiated(t),
            b.is_instantiated(t),
            "{label}: instantiated({t:?}) differs"
        );
    }
    for &m in a.reachable_methods() {
        let md = program.method(m);
        let n_params = md.param_count();
        for i in 0..n_params {
            assert_eq!(
                a.param_state(m, i),
                b.param_state(m, i),
                "{label}: param state {}#{i} differs",
                program.method_label(m)
            );
        }
        assert_eq!(
            a.return_state(m),
            b.return_state(m),
            "{label}: return state of {} differs",
            program.method_label(m)
        );
        assert_eq!(
            a.live_blocks(m),
            b.live_blocks(m),
            "{label}: liveness of {} differs",
            program.method_label(m)
        );
        assert_eq!(
            a.dead_blocks(m),
            b.dead_blocks(m),
            "{label}: dead blocks of {} differ",
            program.method_label(m)
        );
        // Per-statement value states and enablement (flow-level outcomes,
        // keyed stably by (method, block, stmt) instead of flow id).
        if let Some(body) = &md.body {
            for (bi, block) in body.iter_blocks() {
                for si in 0..block.stmts.len() {
                    assert_eq!(
                        a.stmt_state(m, bi, si),
                        b.stmt_state(m, bi, si),
                        "{label}: stmt state {}/{bi:?}/{si} differs",
                        program.method_label(m)
                    );
                    assert_eq!(
                        a.stmt_enabled(m, bi, si),
                        b.stmt_enabled(m, bi, si),
                        "{label}: stmt enablement {}/{bi:?}/{si} differs",
                        program.method_label(m)
                    );
                }
            }
        }
        // Linked targets per call site (order-insensitive: linking order is
        // a solver schedule artifact; the *set* is the analysis outcome).
        let sites_a = a.call_sites(m);
        let sites_b = b.call_sites(m);
        assert_eq!(sites_a.len(), sites_b.len(), "{label}: site counts differ");
        for (sa, sb) in sites_a.iter().zip(sites_b.iter()) {
            assert_eq!(sa.enabled, sb.enabled, "{label}: site enablement differs");
            let mut ta = sa.targets.clone();
            let mut tb = sb.targets.clone();
            ta.sort_unstable();
            tb.sort_unstable();
            assert_eq!(
                ta,
                tb,
                "{label}: linked targets of a site in {} differ",
                program.method_label(m)
            );
        }
    }
    assert_eq!(
        a.metrics(program),
        b.metrics(program),
        "{label}: metrics differ"
    );
}
