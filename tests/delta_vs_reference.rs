//! Differential validation of the delta-propagation solvers against the
//! full-join reference solver ([`SolverKind::Reference`]): on the whole
//! synthetic quick corpus (plus randomized specs), the sequential and
//! parallel delta solvers must produce *identical* analysis results — the
//! reachable set, every per-method value state, liveness, dead-branch
//! reports, linked call targets, and the counter metrics — with and without
//! saturation.
//!
//! Results are compared per method rather than per flow id: the solvers may
//! discover methods in different orders, which permutes flow ids, but every
//! observable outcome must match exactly.

use skipflow::analysis::{analyze, AnalysisConfig, AnalysisResult, SolverKind};
use skipflow::ir::Program;
use skipflow::synth::{build_benchmark, suites, BenchmarkSpec, Suite};

/// Asserts every observable outcome of `b` equals `a` (the reference).
fn assert_results_identical(program: &Program, a: &AnalysisResult, b: &AnalysisResult, label: &str) {
    assert_eq!(
        a.reachable_methods(),
        b.reachable_methods(),
        "{label}: reachable sets differ"
    );
    for t in 0..program.type_count() {
        let t = skipflow::ir::TypeId::from_index(t);
        assert_eq!(
            a.is_instantiated(t),
            b.is_instantiated(t),
            "{label}: instantiated({t:?}) differs"
        );
    }
    for &m in a.reachable_methods() {
        let md = program.method(m);
        let n_params = md.param_count();
        for i in 0..n_params {
            assert_eq!(
                a.param_state(m, i),
                b.param_state(m, i),
                "{label}: param state {}#{i} differs",
                program.method_label(m)
            );
        }
        assert_eq!(
            a.return_state(m),
            b.return_state(m),
            "{label}: return state of {} differs",
            program.method_label(m)
        );
        assert_eq!(
            a.live_blocks(m),
            b.live_blocks(m),
            "{label}: liveness of {} differs",
            program.method_label(m)
        );
        assert_eq!(
            a.dead_blocks(m),
            b.dead_blocks(m),
            "{label}: dead blocks of {} differ",
            program.method_label(m)
        );
        // Per-statement value states and enablement (flow-level outcomes,
        // keyed stably by (method, block, stmt) instead of flow id).
        if let Some(body) = &md.body {
            for (bi, block) in body.iter_blocks() {
                for si in 0..block.stmts.len() {
                    assert_eq!(
                        a.stmt_state(m, bi, si),
                        b.stmt_state(m, bi, si),
                        "{label}: stmt state {}/{bi:?}/{si} differs",
                        program.method_label(m)
                    );
                    assert_eq!(
                        a.stmt_enabled(m, bi, si),
                        b.stmt_enabled(m, bi, si),
                        "{label}: stmt enablement {}/{bi:?}/{si} differs",
                        program.method_label(m)
                    );
                }
            }
        }
        // Linked targets per call site (order-insensitive: linking order is
        // a solver schedule artifact; the *set* is the analysis outcome).
        let sites_a = a.call_sites(m);
        let sites_b = b.call_sites(m);
        assert_eq!(sites_a.len(), sites_b.len(), "{label}: site counts differ");
        for (sa, sb) in sites_a.iter().zip(sites_b.iter()) {
            assert_eq!(sa.enabled, sb.enabled, "{label}: site enablement differs");
            let mut ta = sa.targets.clone();
            let mut tb = sb.targets.clone();
            ta.sort_unstable();
            tb.sort_unstable();
            assert_eq!(
                ta,
                tb,
                "{label}: linked targets of a site in {} differ",
                program.method_label(m)
            );
        }
    }
    assert_eq!(
        a.metrics(program),
        b.metrics(program),
        "{label}: metrics differ"
    );
}

fn check_spec(spec: &BenchmarkSpec) {
    let bench = build_benchmark(spec);
    let program = &bench.program;
    for saturation in [None, Some(3)] {
        for base in [
            AnalysisConfig::skipflow(),
            AnalysisConfig::baseline_pta(),
        ] {
            let mut reference_cfg = base.clone().with_solver(SolverKind::Reference);
            reference_cfg.saturation_threshold = saturation;
            let reference = analyze(program, &bench.roots, &reference_cfg);
            for solver in [SolverKind::Sequential, SolverKind::Parallel { threads: 4 }] {
                let mut cfg = base.clone().with_solver(solver);
                cfg.saturation_threshold = saturation;
                let result = analyze(program, &bench.roots, &cfg);
                assert_results_identical(
                    program,
                    &reference,
                    &result,
                    &format!(
                        "{}/{}/sat={saturation:?}/{solver:?}",
                        spec.name,
                        base.label()
                    ),
                );
            }
        }
    }
}

#[test]
fn delta_solvers_match_reference_on_the_quick_corpus() {
    for spec in suites::quick() {
        check_spec(&spec);
    }
}

#[test]
fn delta_solvers_match_reference_on_randomized_specs() {
    for seed in [11u64, 4242, 90210] {
        let mut spec = BenchmarkSpec::new("diff-ref", Suite::Renaissance, 150, 0.3);
        spec.seed = seed;
        check_spec(&spec);
    }
}

#[test]
fn delta_solvers_match_reference_under_heavy_fanout() {
    // Wide dispatch produces the large type sets where difference
    // propagation actually diverges from full re-joins internally — the
    // observable results must still be identical.
    let spec = BenchmarkSpec::new("diff-wide", Suite::DaCapo, 400, 0.2).with_fanout(16);
    check_spec(&spec);
}
