//! Differential validation of the delta-propagation solvers against the
//! full-join reference solver ([`SolverKind::Reference`]): on the whole
//! synthetic quick corpus (plus randomized, fan-out, and loop-call specs),
//! every delta solver × scheduler combination — sequential and parallel,
//! each under the FIFO and the SCC-priority worklist — must produce
//! *identical* analysis results: the reachable set, every per-method value
//! state, liveness, dead-branch reports, linked call targets, and the
//! counter metrics — with and without saturation.
//!
//! Results are compared per method rather than per flow id: the solvers may
//! discover methods in different orders, which permutes flow ids, but every
//! observable outcome must match exactly.

use skipflow::analysis::{analyze, AnalysisConfig, SchedulerKind, SolverKind};
use skipflow::synth::{build_benchmark, suites, BenchmarkSpec, Suite};

mod common;
use common::assert_results_identical;

/// The delta-solver matrix: every scheduler at the default narrow-join
/// width, plus the fast-path-off (0) and everything-full-join (∞) widths
/// under the two schedulers that exercise them hardest (plain FIFO order
/// and the adaptive flip path) — keeps the product tractable while every
/// (scheduler, width) regime is covered.
fn scheduler_width_matrix() -> Vec<(SchedulerKind, usize)> {
    let default_width = AnalysisConfig::skipflow().narrow_join_width();
    vec![
        (SchedulerKind::Fifo, default_width),
        (SchedulerKind::SccPriority, default_width),
        (SchedulerKind::Adaptive, default_width),
        (SchedulerKind::Fifo, 0),
        (SchedulerKind::Adaptive, 0),
        (SchedulerKind::Fifo, usize::MAX),
        (SchedulerKind::Adaptive, usize::MAX),
    ]
}

fn check_spec(spec: &BenchmarkSpec) {
    let bench = build_benchmark(spec);
    let program = &bench.program;
    for saturation in [None, Some(3)] {
        for base in [
            AnalysisConfig::skipflow(),
            AnalysisConfig::baseline_pta(),
        ] {
            let reference_cfg = base
                .clone()
                .with_solver(SolverKind::Reference)
                .with_saturation(saturation);
            let reference = analyze(program, &bench.roots, &reference_cfg);
            for solver in [SolverKind::Sequential, SolverKind::Parallel { threads: 4 }] {
                for (scheduler, narrow) in scheduler_width_matrix() {
                    let cfg = base
                        .clone()
                        .with_solver(solver)
                        .with_scheduler(scheduler)
                        .with_narrow_join_width(narrow)
                        .with_saturation(saturation);
                    let result = analyze(program, &bench.roots, &cfg);
                    assert_results_identical(
                        program,
                        &reference,
                        &result,
                        &format!(
                            "{}/{}/sat={saturation:?}/{solver:?}/{scheduler:?}/narrow={narrow}",
                            spec.name,
                            base.label()
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn delta_solvers_match_reference_on_the_quick_corpus() {
    for spec in suites::quick() {
        check_spec(&spec);
    }
}

#[test]
fn delta_solvers_match_reference_on_randomized_specs() {
    for seed in [11u64, 4242, 90210] {
        let mut spec = BenchmarkSpec::new("diff-ref", Suite::Renaissance, 150, 0.3);
        spec.seed = seed;
        check_spec(&spec);
    }
}

#[test]
fn delta_solvers_match_reference_under_heavy_fanout() {
    // Wide dispatch produces the large type sets where difference
    // propagation actually diverges from full re-joins internally — the
    // observable results must still be identical.
    let spec = BenchmarkSpec::new("diff-wide", Suite::DaCapo, 400, 0.2).with_fanout(16);
    check_spec(&spec);
}

#[test]
fn delta_solvers_match_reference_on_the_shared_sink_fanout_corpus() {
    // The shared-field fan-out workload: one field sink feeding dozens of
    // readers, with the sink's state growing one type per writer. This is
    // where SCC-priority scheduling diverges hardest from FIFO (writers
    // drain before the sink fans out), so all three schedulers must still
    // agree on every observable outcome.
    let spec = BenchmarkSpec::new("diff-fanout", Suite::DaCapo, 80, 0.2).with_shared_sink(60, 24);
    check_spec(&spec);
}

#[test]
fn windowed_relabel_churn_stays_low_on_the_fanout_corpus() {
    // The list-labeling relabel churn the fan-out corpus provokes: repairs
    // keep relocating components into the same repeatedly-subdivided gap,
    // so the relabel policy decides whether churn stays proportional to the
    // repairs or blows up. Exponential gap spreading (half the reclaimed
    // span goes to the gap under insertion pressure) keeps this workload at
    // ~35.6k relabeled components; the previous even-stride respacing
    // needed ~63.9k, and the gap widens with scale (fanout-400: ~139k vs
    // ~351k). Steps are unaffected — relabeling preserves relative order,
    // so the scheduler drains identically.
    let spec = BenchmarkSpec::new("fanout-200", Suite::DaCapo, 60, 0.0).with_shared_sink(200, 128);
    let bench = build_benchmark(&spec);
    let scc = analyze(
        &bench.program,
        &bench.roots,
        &AnalysisConfig::skipflow().with_scheduler(SchedulerKind::SccPriority),
    );
    let sched = &scc.stats().scheduler;
    assert!(
        sched.order_relabels > 0,
        "the fan-out corpus must exercise the relabel path"
    );
    assert!(
        sched.order_relabels <= 45_000,
        "relabel churn regressed: {} relabeled components (geometric spreading \
         keeps this workload at ~35.6k; even-stride needed ~63.9k)",
        sched.order_relabels
    );
    scc.graph().assert_valid_order();
}

#[test]
fn scc_priorities_survive_mid_solve_fragment_instantiation() {
    // Fragments are built *during* solving (virtual dispatch discovers
    // methods), so the online order must keep the condensation exact as
    // the graph grows: a program of this size exercises mid-solve order
    // repairs, and the final order must still be a valid topological order
    // of the condensation — *exact* priorities at all times, with no
    // provisional-adoption window and no batch recomputes. Results must
    // match the FIFO scheduler and the full-join reference exactly.
    let spec = BenchmarkSpec::new("scc-midsolve", Suite::DaCapo, 2000, 0.2).with_fanout(8);
    let bench = build_benchmark(&spec);
    let scc = analyze(
        &bench.program,
        &bench.roots,
        &AnalysisConfig::skipflow().with_scheduler(SchedulerKind::SccPriority),
    );
    let sched = &scc.stats().scheduler;
    assert!(
        sched.order_repairs >= 1,
        "expected mid-solve order repairs, got {}",
        sched.order_repairs
    );
    assert!(sched.scc_count > 0, "live condensation recorded");
    assert!(
        sched.order_comps_moved > 0,
        "repairs relocated components in place"
    );
    // The exactness guarantee itself: the final live order is a valid
    // topological order of the condensation over every value edge,
    // including everything wired mid-solve.
    scc.graph().assert_valid_order();
    let fifo = analyze(
        &bench.program,
        &bench.roots,
        &AnalysisConfig::skipflow().with_scheduler(SchedulerKind::Fifo),
    );
    let reference = analyze(
        &bench.program,
        &bench.roots,
        &AnalysisConfig::skipflow().with_solver(SolverKind::Reference),
    );
    assert_results_identical(&bench.program, &reference, &scc, "scc-midsolve/scc");
    assert_results_identical(&bench.program, &reference, &fifo, "scc-midsolve/fifo");
    // The oracle paths never touch the online-order machinery.
    assert_eq!(fifo.stats().scheduler.order_repairs, 0);
    assert_eq!(reference.stats().scheduler.order_repairs, 0);
}

#[test]
fn parallel_fanout_batches_antichains_with_zero_dirty_round_skips() {
    // The shared-sink fan-out regime under the parallel solver: with the
    // condensation maintained online there is no dirty window, so the
    // antichain rounds must keep batching mutually ready buckets even
    // while fragments instantiate — zero dirty-round skips (the counter is
    // structurally dead and must stay 0) and strictly more buckets drained
    // than rounds taken (i.e., real multi-bucket batching happened).
    let spec =
        BenchmarkSpec::new("par-antichain", Suite::DaCapo, 60, 0.0).with_shared_sink(100, 64);
    let bench = build_benchmark(&spec);
    let parallel = analyze(
        &bench.program,
        &bench.roots,
        &AnalysisConfig::skipflow()
            .with_solver(SolverKind::Parallel { threads: 4 })
            .with_scheduler(SchedulerKind::SccPriority),
    );
    let sched = &parallel.stats().scheduler;
    assert_eq!(
        sched.antichain_dirty_round_skips, 0,
        "online order leaves no dirty window to skip on"
    );
    assert!(sched.antichain_rounds > 0, "SCC rounds ran");
    assert!(
        sched.antichain_batched_buckets > sched.antichain_rounds,
        "antichain batching happened while fragments instantiated \
         ({} buckets over {} rounds)",
        sched.antichain_batched_buckets,
        sched.antichain_rounds
    );
    parallel.graph().assert_valid_order();
    let reference = analyze(
        &bench.program,
        &bench.roots,
        &AnalysisConfig::skipflow().with_solver(SolverKind::Reference),
    );
    assert_results_identical(&bench.program, &reference, &parallel, "par-antichain");
}

#[test]
fn adaptive_scheduler_flips_mid_solve_and_stays_result_identical() {
    // The shared-sink fan-out regime re-processes readers once per stored
    // type — exactly the re-push storm the adaptive detector watches for.
    // The run must actually flip FIFO→SCC mid-solve (flips ≥ 1, strictly
    // between steps 0 and the end), land near the forced-SCC step count,
    // and stay result-identical to both forced schedulers and the
    // full-join reference.
    let spec = BenchmarkSpec::new("adaptive-flip", Suite::DaCapo, 60, 0.0)
        .with_shared_sink(100, 64);
    let bench = build_benchmark(&spec);
    let adaptive = analyze(
        &bench.program,
        &bench.roots,
        &AnalysisConfig::skipflow().with_scheduler(SchedulerKind::Adaptive),
    );
    let sched = &adaptive.stats().scheduler;
    assert!(sched.flips >= 1, "expected a mid-solve FIFO→SCC flip");
    assert!(
        sched.flip_at_step > 0 && sched.flip_at_step < adaptive.stats().steps,
        "the flip happened mid-solve (step {} of {})",
        sched.flip_at_step,
        adaptive.stats().steps
    );
    assert!(sched.scc_count > 0, "the condensation was computed at the flip");
    assert!(
        sched.adaptive_re_pops > 0,
        "the detector observed the re-push storm"
    );
    let fifo = analyze(
        &bench.program,
        &bench.roots,
        &AnalysisConfig::skipflow().with_scheduler(SchedulerKind::Fifo),
    );
    let forced_scc = analyze(
        &bench.program,
        &bench.roots,
        &AnalysisConfig::skipflow().with_scheduler(SchedulerKind::SccPriority),
    );
    let reference = analyze(
        &bench.program,
        &bench.roots,
        &AnalysisConfig::skipflow().with_solver(SolverKind::Reference),
    );
    assert_results_identical(&bench.program, &reference, &adaptive, "adaptive-flip/adaptive");
    assert_results_identical(&bench.program, &reference, &fifo, "adaptive-flip/fifo");
    assert_results_identical(&bench.program, &reference, &forced_scc, "adaptive-flip/scc");
    // The step win is retained: far below FIFO, close to forced SCC.
    assert!(
        adaptive.stats().steps < fifo.stats().steps / 2,
        "adaptive {} steps vs FIFO {}",
        adaptive.stats().steps,
        fifo.stats().steps
    );
    // The forced schedulers never flip.
    assert_eq!(fifo.stats().scheduler.flips, 0);
    assert_eq!(forced_scc.stats().scheduler.flips, 0);
}

#[test]
fn delta_solvers_match_reference_on_loop_call_corpora() {
    // Calls inside `while` bodies: the callee's enabling predicate is the
    // loop body's φ_pred, built (and linked) mid-solve — the regime of
    // PR 1's late-built `pred_on → φ_pred` soundness fix, now exercised
    // across every solver × scheduler combination.
    for seed in [7u64, 5150] {
        let mut spec = BenchmarkSpec::new("diff-loop-calls", Suite::Microservices, 160, 0.3);
        spec.seed = seed;
        assert!(spec.loop_calls, "loop-body calls are the default");
        check_spec(&spec);
    }
    // The call-free ablation shape stays identical too.
    let spec = BenchmarkSpec::new("diff-loop-plain", Suite::DaCapo, 120, 0.2)
        .with_loop_calls(false);
    check_spec(&spec);
}


