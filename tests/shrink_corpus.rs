//! Shrinking over the corpus and random programs: the rebuilt programs
//! re-validate, behave identically under the interpreter, and are genuinely
//! smaller in encoded bytes — the honest version of Table 1's binary-size
//! column.

use proptest::prelude::*;
use skipflow::analysis::shrink::{encoded_sizes, shrink};
use skipflow::analysis::{analyze, AnalysisConfig};
use skipflow::ir::interp::{run, InterpConfig};
use skipflow::synth::{build_benchmark, suites, BenchmarkSpec, Suite};

#[test]
fn corpus_shrinks_and_preserves_behaviour() {
    for spec in suites::quick() {
        let bench = build_benchmark(&spec);
        let program = &bench.program;
        let main = bench.roots[0];
        let result = analyze(program, &bench.roots, &AnalysisConfig::skipflow());
        let shrunk = shrink(program, &result)
            .unwrap_or_else(|e| panic!("{}: shrunk program invalid: {e}", spec.name));

        // Sizes: methods and bytes drop in line with the analysis.
        assert!(shrunk.stats.methods_after < shrunk.stats.methods_before, "{}", spec.name);
        let (before, after) = encoded_sizes(program, &shrunk);
        assert!(after < before, "{}: {after} !< {before}", spec.name);

        // Behaviour: identical traces for several input seeds.
        let new_main = shrunk.method_map[&main];
        for seed in [0, 3, 9] {
            let cfg = InterpConfig {
                seed,
                max_steps: 30_000,
                ..Default::default()
            };
            let a = run(program, main, &[], &cfg);
            let b = run(&shrunk.program, new_main, &[], &cfg);
            assert_eq!(a.outcome, b.outcome, "{} seed {seed}", spec.name);
            assert_eq!(a.steps, b.steps, "{} seed {seed}", spec.name);
        }
    }
}

#[test]
fn sunflow_shrink_mirrors_the_paper_binary_size_claim() {
    // DaCapo Sunflow loses ~50 % of its binary in the paper; the real
    // encoded bytes of the shrunk corpus benchmark agree in shape.
    let spec = suites::by_name("sunflow").unwrap();
    let bench = build_benchmark(&spec);
    let skf = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());
    let pta = analyze(&bench.program, &bench.roots, &AnalysisConfig::baseline_pta());
    let s = shrink(&bench.program, &skf).unwrap();
    let p = shrink(&bench.program, &pta).unwrap();
    let (original, skf_bytes) = encoded_sizes(&bench.program, &s);
    let (_, pta_bytes) = encoded_sizes(&bench.program, &p);
    let reduction = 1.0 - skf_bytes as f64 / pta_bytes as f64;
    assert!(
        reduction > 0.35,
        "SkipFlow's sunflow binary should be far smaller than PTA's: \
         original {original}, PTA {pta_bytes}, SkipFlow {skf_bytes} ({reduction:.2})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_programs_shrink_soundly(
        seed in 0u64..1_000_000,
        methods in 40usize..140,
        dead in 0.0f64..0.5,
        interp_seed in 0u64..100,
    ) {
        let mut spec = BenchmarkSpec::new("shrink", Suite::DaCapo, methods, dead);
        spec.seed = seed;
        let bench = build_benchmark(&spec);
        let program = &bench.program;
        let main = bench.roots[0];
        let result = analyze(program, &bench.roots, &AnalysisConfig::skipflow());
        let shrunk = shrink(program, &result).expect("rebuild validates");

        let cfg = InterpConfig { seed: interp_seed, max_steps: 20_000, ..Default::default() };
        let a = run(program, main, &[], &cfg);
        let b = run(&shrunk.program, shrunk.method_map[&main], &[], &cfg);
        prop_assert_eq!(a.outcome, b.outcome);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.instantiated.len(), b.instantiated.len());
    }
}
