//! SkipFlow as "whole-program SCCP" (paper §7): classical intraprocedural
//! Sparse Conditional Constant Propagation folds a subset of the branches
//! SkipFlow folds — strictly fewer whenever constants flow through calls.

use skipflow::analysis::{analyze, AnalysisConfig};
use skipflow::baselines::sccp::sccp;
use skipflow::synth::{build_benchmark, suites};

#[test]
fn skipflow_subsumes_sccp_on_the_corpus() {
    let spec = suites::by_name("sunflow").unwrap();
    let bench = build_benchmark(&spec);
    let program = &bench.program;
    let result = analyze(program, &bench.roots, &AnalysisConfig::skipflow());

    let mut sccp_folded_total = 0usize;
    let mut skipflow_extra = 0usize;

    for &m in result.reachable_methods() {
        let Some(body) = &program.method(m).body else { continue };
        let local = sccp(program, body);
        sccp_folded_total += local.folded_branches.len();

        // Every block SCCP proves dead, SkipFlow proves dead too.
        let sf_dead: std::collections::BTreeSet<_> =
            result.dead_blocks(m).into_iter().collect();
        for b in local.dead_blocks() {
            assert!(
                sf_dead.contains(&b),
                "{}: SCCP-dead block {b} not dead under SkipFlow",
                program.method_label(m)
            );
        }
        skipflow_extra += sf_dead.len().saturating_sub(local.dead_blocks().len());
    }

    // The corpus's guards are interprocedural by construction, so SkipFlow
    // must fold strictly more than local SCCP.
    assert!(
        skipflow_extra > 0,
        "SkipFlow should prove blocks dead that SCCP cannot \
         (SCCP folded {sccp_folded_total} branches)"
    );
}

#[test]
fn the_fig4_gap_local_vs_interprocedural() {
    // Figure 4's discussion verbatim: constant folding covers the case where
    // x is a constant *locally*; once it is a parameter, only an
    // interprocedural analysis helps.
    let src = "
        class Main {
          static method m(): void { return; }
          static method f(): void { return; }
          static method branchLocal(): void {
            var x = 42;
            if (x > 10) { Main.m(); } else { Main.f(); }
          }
          static method branchParam(x: int): void {
            if (x > 10) { Main.m(); } else { Main.f(); }
          }
          static method main(): void {
            Main.branchLocal();
            Main.branchParam(42);
          }
        }
    ";
    let program = skipflow::ir::frontend::compile(src).unwrap();
    let main_cls = program.type_by_name("Main").unwrap();
    let get = |n: &str| program.method_by_name(main_cls, n).unwrap();

    // SCCP folds the local branch…
    let local = sccp(&program, program.method(get("branchLocal")).body.as_ref().unwrap());
    assert_eq!(local.folded_branches.len(), 1);
    // …but not the parameterized one.
    let param = sccp(&program, program.method(get("branchParam")).body.as_ref().unwrap());
    assert!(param.folded_branches.is_empty());

    // SkipFlow folds both: the constant 42 flows through the call.
    let result = analyze(&program, &[get("main")], &AnalysisConfig::skipflow());
    assert!(!result.dead_blocks(get("branchLocal")).is_empty());
    assert!(!result.dead_blocks(get("branchParam")).is_empty());
    assert!(!result.is_reachable(get("f")), "f() is dead in both branches");
}
