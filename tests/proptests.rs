//! Property-based tests across the whole stack:
//!
//! * lattice laws for [`ValueState`] joins;
//! * soundness of the `Compare` filter against a concrete-execution oracle;
//! * for randomly generated programs: analysis termination, the precision
//!   ladder, determinism, and sequential/parallel solver equivalence.

use proptest::prelude::*;
use skipflow::analysis::{analyze, compare, AnalysisConfig, CallGraphQuery, SolverKind, ValueState};
use skipflow::baselines::rapid_type_analysis;
use skipflow::ir::{CmpOp, TypeId};
use skipflow::synth::{build_benchmark, BenchmarkSpec, GuardMix, Suite};

fn arb_state() -> impl Strategy<Value = ValueState> {
    prop_oneof![
        Just(ValueState::Empty),
        (-3i64..10).prop_map(ValueState::Const),
        Just(ValueState::Any),
        proptest::collection::btree_set(1usize..12, 0..5).prop_map(|s| {
            let set: skipflow::analysis::TypeSet =
                s.into_iter().map(TypeId::from_index).collect();
            ValueState::from_types(set)
        }),
        Just(ValueState::null()),
    ]
}

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

proptest! {
    #[test]
    fn join_is_commutative_associative_idempotent(
        a in arb_state(), b in arb_state(), c in arb_state()
    ) {
        // Commutative.
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(&ab, &ba);
        // Idempotent.
        let mut aa = a.clone();
        prop_assert!(!aa.join(&a));
        prop_assert_eq!(&aa, &a);
        // Associative.
        let mut ab_c = ab.clone();
        ab_c.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut a_bc = a.clone();
        a_bc.join(&bc);
        prop_assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn join_is_an_upper_bound(a in arb_state(), b in arb_state()) {
        let mut j = a.clone();
        j.join(&b);
        prop_assert!(a.le(&j));
        prop_assert!(b.le(&j));
    }

    #[test]
    fn le_is_a_partial_order(a in arb_state(), b in arb_state(), c in arb_state()) {
        prop_assert!(a.le(&a));
        if a.le(&b) && b.le(&a) {
            prop_assert_eq!(&a, &b);
        }
        if a.le(&b) && b.le(&c) {
            prop_assert!(a.le(&c));
        }
    }

    /// Oracle: if a concrete primitive `l ∈ vl` and some `r ∈ vr` satisfy
    /// `l op r`, then `l` must survive `compare(op, vl, vr)` — filtering can
    /// lose precision, never soundness.
    #[test]
    fn compare_is_sound_for_primitive_constants(
        op in arb_op(),
        l in -3i64..10,
        r in -3i64..10,
    ) {
        let vl = ValueState::Const(l);
        let vr = ValueState::Const(r);
        let out = compare(op, &vl, &vr);
        if op.eval(l, r) {
            prop_assert!(
                vl.le(&out),
                "concrete witness {l} {op:?} {r} lost: {out:?}"
            );
        }
    }

    /// Widening an operand never shrinks the filter result (monotonicity of
    /// Compare in its left argument) — for *well-typed* operand pairs.
    /// Mixed primitive/reference equality is ill-typed in the base language;
    /// `compare` answers it conservatively (`vl` unfiltered), which is not
    /// monotone against the `Any` case, and the engine's accumulate-only
    /// out-states absorb that corner (outputs only ever grow).
    #[test]
    fn compare_is_monotone_in_vl(
        op in arb_op(),
        a in arb_state(),
        b in arb_state(),
        vr in arb_state(),
    ) {
        let is_prim = |v: &ValueState| matches!(v, ValueState::Const(_));
        let is_obj = |v: &ValueState| matches!(v, ValueState::Types(_));
        let mut ab = a.clone();
        ab.join(&b);
        // Skip ill-typed pairings (either side, before or after the join).
        let mixed = (is_prim(&vr) && (is_obj(&a) || is_obj(&b)))
            || (is_obj(&vr) && (is_prim(&a) || is_prim(&b)));
        prop_assume!(!mixed);
        let out_a = compare(op, &a, &vr);
        let out_ab = compare(op, &ab, &vr);
        prop_assert!(
            out_a.le(&out_ab),
            "compare({op:?}, {a:?} ⊑ {ab:?}, {vr:?}): {out_a:?} ⋢ {out_ab:?}"
        );
    }
}

fn arb_spec() -> impl Strategy<Value = BenchmarkSpec> {
    (
        0u64..1_000_000,
        60usize..200,
        0.0f64..0.6,
        1usize..4,
        1usize..4,
        0u32..4,
    )
        .prop_map(|(seed, methods, dead, fanout, depth, mix)| {
            let mut spec = BenchmarkSpec::new("prop", Suite::DaCapo, methods, dead);
            spec.seed = seed;
            spec.dispatch_fanout = fanout;
            spec.chain_depth = depth;
            spec.guard_mix = match mix {
                0 => GuardMix::balanced(),
                1 => GuardMix::null_default_heavy(),
                2 => GuardMix::const_flag_heavy(),
                _ => GuardMix {
                    null_default: 1,
                    const_flag: 1,
                    type_test: 1,
                    always_throws: 2,
                },
            };
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end soundness on random programs: the analysis terminates and
    /// the precision ladder holds.
    #[test]
    fn random_programs_satisfy_the_precision_ladder(spec in arb_spec()) {
        let bench = build_benchmark(&spec);
        let bounded = AnalysisConfig::skipflow().with_max_steps(5_000_000);
        let skf = analyze(&bench.program, &bench.roots, &bounded);
        let pta_cfg = AnalysisConfig::baseline_pta().with_max_steps(5_000_000);
        let pta = analyze(&bench.program, &bench.roots, &pta_cfg);
        let rta = rapid_type_analysis(&bench.program, &bench.roots);

        prop_assert!(skf.reachable_methods().is_subset(pta.reachable_methods()));
        prop_assert!(pta.refines(&rta));

        // Every live-module method must stay reachable under SkipFlow: the
        // generator's live wiring is unguarded.
        let live_floor = bench.live_methods;
        prop_assert!(
            skf.reachable_methods().len() >= live_floor.saturating_sub(2),
            "SkipFlow dropped live code: {} < {}",
            skf.reachable_methods().len(),
            live_floor
        );
    }

    /// The deterministic-parallel solver matches sequential on random
    /// programs.
    #[test]
    fn parallel_equals_sequential_on_random_programs(
        spec in arb_spec(),
        threads in 2usize..5,
    ) {
        let bench = build_benchmark(&spec);
        let seq = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());
        let par = analyze(
            &bench.program,
            &bench.roots,
            &AnalysisConfig::skipflow().with_solver(SolverKind::Parallel { threads }),
        );
        prop_assert_eq!(seq.reachable_methods(), par.reachable_methods());
        prop_assert_eq!(
            seq.metrics(&bench.program),
            par.metrics(&bench.program)
        );
    }
}

proptest! {
    /// The online topological order / SCC structure (`Pvpg` with
    /// `enable_online_order`) against the from-scratch Tarjan oracle
    /// (`compute_sccs`), over random interleavings of flow creation,
    /// anchored flow creation, and (deduplicated, possibly cycle-closing)
    /// edge insertion:
    ///
    /// * SCC membership must be identical to the oracle's, and
    /// * the live labels must form a valid topological order of the
    ///   condensation (checked edge-by-edge by `assert_valid_order`).
    #[test]
    fn online_order_matches_tarjan_oracle(
        ops in proptest::collection::vec((0u8..8, 0usize..64, 0usize..64), 1..160),
    ) {
        use skipflow::analysis::{FlowId, Pvpg};
        use skipflow::ir::TypeRef;
        let mut g = Pvpg::new();
        g.enable_online_order();
        let mut flows: Vec<FlowId> = Vec::new();
        let mut batch_open: Option<usize> = None;
        for (op, a, b) in ops {
            match op {
                // New flow at the end of the order.
                0 | 1 => {
                    flows.push(g.add_root_source(TypeRef::Prim));
                }
                // New flow anchored before an existing one (the engine's
                // mid-solve fragment placement).
                2 if !flows.is_empty() => {
                    g.set_fragment_anchor(Some(flows[a % flows.len()]));
                    flows.push(g.add_root_source(TypeRef::Prim));
                    g.set_fragment_anchor(None);
                }
                // Construction-time edge inside an open batch.
                3 if flows.len() >= 2 => {
                    let first = *batch_open.get_or_insert(g.flow_count());
                    let (s, t) = (flows[a % flows.len()], flows[b % flows.len()]);
                    if s != t {
                        // Sealed flows are CSR-frozen once; only flows of
                        // the open batch may source construction edges.
                        if s.index() >= first {
                            g.add_use(s, t);
                        } else {
                            g.seal_batch(first);
                            batch_open = None;
                            g.add_use_dedup(s, t);
                        }
                    }
                }
                // Dynamically discovered edge (the solving-time path).
                _ if flows.len() >= 2 => {
                    if let Some(first) = batch_open.take() {
                        g.seal_batch(first);
                    }
                    let (s, t) = (flows[a % flows.len()], flows[b % flows.len()]);
                    if s != t {
                        g.add_use_dedup(s, t);
                    }
                }
                _ => {}
            }
        }
        if let Some(first) = batch_open.take() {
            g.seal_batch(first);
        }
        // The live order is a valid topological order of the condensation.
        g.assert_valid_order();
        // SCC membership is identical to the from-scratch Tarjan oracle.
        let oracle = g.compute_sccs();
        let n = g.flow_count();
        for i in 0..n {
            let fi = FlowId::try_from_index(i).unwrap();
            prop_assert_eq!(
                g.component_size(fi).unwrap() >= 2,
                oracle.cyclic[i],
                "cyclic flag of flow {} disagrees with the oracle", i
            );
            for j in (i + 1)..n {
                let fj = FlowId::try_from_index(j).unwrap();
                prop_assert_eq!(
                    g.same_component(fi, fj).unwrap(),
                    oracle.comp[i] == oracle.comp[j],
                    "SCC membership of flows {} and {} disagrees with the oracle", i, j
                );
            }
        }
    }
}
