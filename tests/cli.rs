//! End-to-end tests of the `skipflow` command-line tool: compile a source
//! file to the binary format, analyze both forms, interpret, and dump dot.

use std::path::PathBuf;
use std::process::Command;

const SRC: &str = "
    class Config { static method flag(): int { return 0; } }
    class Tracer { static method go(): void { return; } }
    class Main {
      static method main(): int {
        if (Config.flag()) { Tracer.go(); }
        return 41;
      }
    }
";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_skipflow"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skipflow-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn compile_analyze_run_roundtrip() {
    let dir = tmpdir("roundtrip");
    let src_path = dir.join("app.sf");
    let bin_path = dir.join("app.sfbc");
    std::fs::write(&src_path, SRC).unwrap();

    // compile → .sfbc
    let out = bin()
        .args(["compile", src_path.to_str().unwrap(), "-o", bin_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(bin_path.exists());
    let bytes = std::fs::read(&bin_path).unwrap();
    assert!(bytes.starts_with(b"SFBC"));

    // analyze both the source and the binary form; results agree.
    let mut reports = Vec::new();
    for p in [&src_path, &bin_path] {
        let out = bin()
            .args(["analyze", p.to_str().unwrap(), "--metrics"])
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(text.contains("SkipFlow:"), "{text}");
        assert!(text.contains("reachable methods"), "{text}");
        // Strip the timing part, which differs between runs.
        let stable: String = text
            .lines()
            .map(|l| l.split(" steps").next().unwrap_or(l))
            .collect();
        reports.push(stable);
    }
    assert_eq!(reports[0], reports[1]);

    // run: the interpreter returns 41.
    let out = bin()
        .args(["run", src_path.to_str().unwrap(), "--seed", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Returned(Some(Int(41)))"), "{text}");
}

#[test]
fn analyze_compare_lists_removed_methods() {
    let dir = tmpdir("compare");
    let src_path = dir.join("app.sf");
    std::fs::write(&src_path, SRC).unwrap();
    let out = bin()
        .args(["analyze", src_path.to_str().unwrap(), "--compare"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("removed: Tracer.go"), "{text}");
}

#[test]
fn analyze_pta_config_keeps_tracer() {
    let dir = tmpdir("pta");
    let src_path = dir.join("app.sf");
    std::fs::write(&src_path, SRC).unwrap();
    let skipflow_out = bin()
        .args(["analyze", src_path.to_str().unwrap()])
        .output()
        .unwrap();
    let pta_out = bin()
        .args(["analyze", src_path.to_str().unwrap(), "--config", "pta"])
        .output()
        .unwrap();
    let s = String::from_utf8_lossy(&skipflow_out.stdout).to_string();
    let p = String::from_utf8_lossy(&pta_out.stdout).to_string();
    let count = |t: &str| -> usize {
        t.split(": ").nth(1).unwrap().split(' ').next().unwrap().parse().unwrap()
    };
    assert!(count(&s) < count(&p), "skipflow: {s} pta: {p}");
}

#[test]
fn dot_subcommand_emits_graphviz() {
    let dir = tmpdir("dot");
    let src_path = dir.join("app.sf");
    std::fs::write(&src_path, SRC).unwrap();
    let out = bin()
        .args(["dot", src_path.to_str().unwrap(), "--method", "Main.main"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("digraph pvpg"), "{text}");
    assert!(text.contains("style=dashed"), "{text}");
}

#[test]
fn print_subcommand_dumps_ssa() {
    let dir = tmpdir("print");
    let src_path = dir.join("app.sf");
    std::fs::write(&src_path, SRC).unwrap();
    let out = bin()
        .args(["print", src_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("class Main"), "{text}");
    assert!(text.contains("start("), "{text}");
}

#[test]
fn shrink_subcommand_produces_a_smaller_runnable_program() {
    let dir = tmpdir("shrink");
    let src_path = dir.join("app.sf");
    let out_path = dir.join("app-shrunk.sfbc");
    std::fs::write(&src_path, SRC).unwrap();

    let out = bin()
        .args([
            "shrink",
            src_path.to_str().unwrap(),
            "-o",
            out_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("methods 3 -> 2"), "{text}");

    // The shrunk binary still runs and returns the same value.
    let out = bin()
        .args(["run", out_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Returned(Some(Int(41)))"), "{text}");
}

#[test]
fn errors_are_reported_cleanly() {
    // Unknown subcommand.
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // Missing file.
    let out = bin().args(["analyze", "/nonexistent.sf"]).output().unwrap();
    assert!(!out.status.success());

    // Parse error in source.
    let dir = tmpdir("err");
    let bad = dir.join("bad.sf");
    std::fs::write(&bad, "class { oops").unwrap();
    let out = bin().args(["analyze", bad.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    // Unreachable dot target.
    let src = dir.join("app.sf");
    std::fs::write(&src, SRC).unwrap();
    let out = bin()
        .args(["dot", src.to_str().unwrap(), "--method", "Tracer.go"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not reachable"));
}

#[test]
fn analyze_budget_steps_reports_partial_state_and_exits_zero() {
    let dir = tmpdir("budget");
    let src_path = dir.join("app.sf");
    std::fs::write(&src_path, SRC).unwrap();

    // A zero-step budget interrupts before the first step: the CLI reports
    // the (empty) checkpoint tagged [partial] and exits 0 — an exhausted
    // budget is a reportable state, not a failure.
    let out = bin()
        .args(["analyze", src_path.to_str().unwrap(), "--budget-steps", "0"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("analysis interrupted"), "{text}");
    assert!(text.contains("step budget exhausted"), "{text}");
    assert!(text.contains("[partial]"), "{text}");

    // A generous budget completes: no interrupt line, no partial tag.
    let out = bin()
        .args(["analyze", src_path.to_str().unwrap(), "--budget-steps", "1000000"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("interrupted"), "{text}");
    assert!(!text.contains("[partial]"), "{text}");

    // Same for a generous wall budget.
    let out = bin()
        .args(["analyze", src_path.to_str().unwrap(), "--budget-ms", "60000"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("[partial]"), "{text}");

    // Malformed budget values are one-line errors.
    let out = bin()
        .args(["analyze", src_path.to_str().unwrap(), "--budget-steps", "lots"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--budget-steps"));
}

#[test]
fn unknown_root_names_are_one_line_errors_not_panics() {
    let dir = tmpdir("badroot");
    let src = dir.join("app.sf");
    std::fs::write(&src, SRC).unwrap();
    // Root selection on an unknown method name — including on the
    // `--compare` path — must exit non-zero with exactly one `error:` line
    // on stderr: no Debug-formatted panic, no usage dump.
    for extra in [&["--root", "Nope.nope"][..], &["--compare", "--root", "Main.missing"][..]] {
        let mut args = vec!["analyze", src.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = bin().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} unexpectedly succeeded");
        let stderr = String::from_utf8_lossy(&out.stderr);
        let lines: Vec<&str> = stderr.lines().filter(|l| !l.trim().is_empty()).collect();
        assert_eq!(lines.len(), 1, "expected one error line, got: {stderr}");
        assert!(lines[0].starts_with("error: "), "{stderr}");
        assert!(lines[0].contains("unknown"), "{stderr}");
        assert!(!stderr.contains("panicked"), "{stderr}");
        assert!(!stderr.contains("usage"), "{stderr}");
    }
    // Shrink goes through the same fallible path (it used to panic through
    // the one-shot `analyze` wrapper).
    let out = bin()
        .args([
            "shrink",
            src.to_str().unwrap(),
            "-o",
            dir.join("out.sfbc").to_str().unwrap(),
            "--root",
            "Ghost.main",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("error: "), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}
