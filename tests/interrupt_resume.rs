//! Differential validation of interruptible solves: a solve stopped by a
//! step/wall/memory budget or a cancel token and then resumed must complete
//! to a fixpoint **bit-identical** (reachable set, instantiated types,
//! per-flow states, liveness, linked targets, metrics) to an uninterrupted
//! run — across every solver × scheduler combination, at every interrupt
//! point along a sweep. Every intermediate checkpoint must itself be a
//! sound under-approximation: a valid, queryable snapshot whose reachable
//! set is a subset of the final one, tagged `Completeness::Partial`.
//!
//! This is the interrupt-safety contract documented at the top of
//! `crates/core/src/engine.rs`; the deterministic mid-round triggers
//! (cancel at an exact step, a panicking parallel worker) live in
//! `tests/fault_injection.rs` behind the `fault-inject` feature.

use skipflow::analysis::{
    analyze, AnalysisConfig, AnalysisError, AnalysisResult, AnalysisSession, CallGraphQuery,
    CancelToken, Completeness, InterruptReason, SchedulerKind, SolveOutcome, SolverKind,
};
use skipflow::ir::MethodId;
use skipflow::synth::{build_benchmark, pick_spread_roots, Benchmark, BenchmarkSpec, Suite};
use std::time::Duration;

mod common;
use common::assert_results_identical;

/// The solver × scheduler grid the interrupt differential covers (the
/// reference solver ignores the scheduler knob, so it appears once).
fn solver_matrix() -> Vec<(SolverKind, SchedulerKind)> {
    vec![
        (SolverKind::Sequential, SchedulerKind::Fifo),
        (SolverKind::Sequential, SchedulerKind::SccPriority),
        (SolverKind::Sequential, SchedulerKind::Adaptive),
        (SolverKind::Parallel { threads: 4 }, SchedulerKind::Fifo),
        (SolverKind::Parallel { threads: 4 }, SchedulerKind::SccPriority),
        (SolverKind::Parallel { threads: 4 }, SchedulerKind::Adaptive),
        (SolverKind::Reference, SchedulerKind::Fifo),
    ]
}

fn bench() -> Benchmark {
    build_benchmark(&BenchmarkSpec::new("interrupt", Suite::DaCapo, 60, 0.2))
}

/// Solves to completion under a per-solve step budget of `k`, asserting at
/// every interrupt that the checkpoint is a valid partial view. Returns the
/// finished result and how many interrupts it took.
fn solve_through_interrupts(
    bench: &Benchmark,
    config: &AnalysisConfig,
    oracle: &AnalysisResult,
    label: &str,
) -> (AnalysisResult, u64) {
    let mut session = AnalysisSession::builder(&bench.program)
        .config(config.clone())
        .roots(bench.roots.iter().copied())
        .build()
        .expect("valid roots");
    let mut interrupts = 0u64;
    loop {
        let done = match session.solve_interruptible(None).expect("no hard failure") {
            SolveOutcome::Completed(snap) => {
                assert_eq!(snap.completeness(), Completeness::Complete, "{label}");
                true
            }
            SolveOutcome::Interrupted { reason, partial } => {
                assert!(
                    matches!(reason, InterruptReason::StepBudget { .. }),
                    "{label}: unexpected reason {reason}"
                );
                // The checkpoint is a sound under-approximation, fully
                // queryable and tagged partial.
                assert_eq!(partial.completeness(), Completeness::Partial, "{label}");
                assert!(
                    partial
                        .reachable_methods()
                        .is_subset(oracle.reachable_methods()),
                    "{label}: partial reachable set must under-approximate the fixpoint"
                );
                assert!(partial.refines(oracle), "{label}: partial ⊆ complete");
                let _ = partial.call_graph_edges();
                false
            }
        };
        if done {
            break;
        }
        assert!(!session.is_up_to_date(), "{label}: interrupted ⇒ work remains");
        interrupts += 1;
        assert!(interrupts < 100_000, "{label}: interrupt loop did not converge");
    }
    assert!(session.is_up_to_date(), "{label}");
    let stats = session.snapshot().stats().clone();
    assert_eq!(stats.interrupt.interrupts, interrupts, "{label}");
    assert_eq!(stats.interrupt.resumed_after_interrupt, interrupts, "{label}");
    assert_eq!(stats.interrupt.worker_panics, 0, "{label}");
    (session.into_result(), interrupts)
}

#[test]
fn step_budget_sweep_resumes_bit_identical_across_the_matrix() {
    let bench = bench();
    for (solver, scheduler) in solver_matrix() {
        let config = AnalysisConfig::skipflow()
            .with_solver(solver)
            .with_scheduler(scheduler);
        let oracle = analyze(&bench.program, &bench.roots, &config);
        let total = oracle.stats().steps;
        assert!(total > 16, "corpus too small to sweep ({total} steps)");
        // Every small k (where the edge cases live: the first step, the
        // first round, budgets straddling a parallel batch) plus a spread
        // of larger interrupt points up to one past the total.
        let stride = (total / 24).max(1);
        let ks = (1..=16).chain((17..=total + 1).step_by(stride as usize));
        for k in ks {
            let label = format!("{solver:?}/{scheduler:?}/k={k}");
            let budgeted = config.clone().with_step_budget(k);
            let (resumed, interrupts) =
                solve_through_interrupts(&bench, &budgeted, &oracle, &label);
            assert_results_identical(&bench.program, &oracle, &resumed, &label);
            if k > total {
                assert_eq!(interrupts, 0, "{label}: budget larger than the solve");
            } else {
                assert!(interrupts >= 1, "{label}: budget {k} ≤ {total} must interrupt");
            }
        }
    }
}

#[test]
fn interrupt_then_add_roots_then_resume_matches_fresh_union() {
    // The resume machinery must compose: interrupt mid-solve, add new entry
    // points at the checkpoint, and keep solving under the same budget —
    // the eventual fixpoint equals a fresh uninterrupted run over the union.
    let bench = bench();
    let extra = pick_spread_roots(&bench.program, &bench.roots, 8);
    assert!(!extra.is_empty());
    let union_roots: Vec<MethodId> = bench.roots.iter().chain(&extra).copied().collect();
    for (solver, scheduler) in [
        (SolverKind::Sequential, SchedulerKind::Adaptive),
        (SolverKind::Parallel { threads: 4 }, SchedulerKind::SccPriority),
        (SolverKind::Reference, SchedulerKind::Fifo),
    ] {
        let label = format!("union/{solver:?}/{scheduler:?}");
        let config = AnalysisConfig::skipflow()
            .with_solver(solver)
            .with_scheduler(scheduler);
        let oracle = analyze(&bench.program, &union_roots, &config);

        let mut session = AnalysisSession::builder(&bench.program)
            .config(config.clone().with_step_budget(7))
            .roots(bench.roots.iter().copied())
            .build()
            .unwrap();
        // Take a few interrupted bites at the first root set…
        for _ in 0..3 {
            let outcome = session.solve_interruptible(None).unwrap();
            if !outcome.is_interrupted() {
                break;
            }
        }
        // …inject the extra roots at whatever checkpoint we reached…
        session.add_roots(extra.iter().copied()).unwrap();
        // …and drive the budgeted session to completion.
        let mut rounds = 0;
        while !session.is_up_to_date() {
            session.solve_interruptible(None).unwrap();
            rounds += 1;
            assert!(rounds < 100_000, "{label}: did not converge");
        }
        let resumed = session.into_result();
        assert_results_identical(&bench.program, &oracle, &resumed, &label);
    }
}

#[test]
fn zero_budgets_interrupt_immediately_with_a_valid_empty_checkpoint() {
    let bench = bench();
    let oracle = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());
    let zero_budgets: Vec<(&str, AnalysisConfig)> = vec![
        ("steps=0", AnalysisConfig::skipflow().with_step_budget(0u64)),
        (
            "wall=0",
            AnalysisConfig::skipflow().with_wall_budget(Duration::ZERO),
        ),
        ("memory=0", AnalysisConfig::skipflow().with_memory_budget(0usize)),
    ];
    for (label, config) in zero_budgets {
        let mut session = AnalysisSession::builder(&bench.program)
            .config(config)
            .roots(bench.roots.iter().copied())
            .build()
            .unwrap();
        // A zero budget can never admit a step: every solve interrupts
        // before step one, repeatedly, without corrupting the session.
        for round in 0..3 {
            let outcome = session.solve_interruptible(None).unwrap();
            match outcome {
                SolveOutcome::Interrupted { reason, partial } => {
                    match (label, reason) {
                        ("steps=0", InterruptReason::StepBudget { budget: 0 }) => {}
                        ("wall=0", InterruptReason::WallBudget { .. }) => {}
                        (
                            "memory=0",
                            InterruptReason::MemoryBudget {
                                budget_bytes: 0,
                                estimated_bytes,
                            },
                        ) => assert!(estimated_bytes > 0, "{label}"),
                        (_, other) => panic!("{label}: unexpected reason {other}"),
                    }
                    // The checkpoint is empty but valid: zero steps run,
                    // every query answers, and it under-approximates.
                    assert_eq!(partial.stats().steps, 0, "{label} round {round}");
                    assert_eq!(partial.completeness(), Completeness::Partial);
                    assert!(partial.refines(&oracle), "{label}");
                    let _ = partial.call_graph_edges();
                    let _ = partial.metrics(&bench.program);
                }
                SolveOutcome::Completed(_) => panic!("{label}: zero budget completed"),
            }
            assert!(!session.is_up_to_date(), "{label}");
        }
    }
}

#[test]
fn pre_tripped_cancel_token_interrupts_before_the_first_step() {
    let bench = bench();
    let config = AnalysisConfig::skipflow();
    let oracle = analyze(&bench.program, &bench.roots, &config);
    let mut session = AnalysisSession::builder(&bench.program)
        .config(config)
        .roots(bench.roots.iter().copied())
        .build()
        .unwrap();
    let token = CancelToken::new();
    token.cancel();
    match session.solve_interruptible(Some(&token)).unwrap() {
        SolveOutcome::Interrupted { reason, partial } => {
            assert_eq!(reason, InterruptReason::Cancelled);
            assert_eq!(partial.stats().steps, 0, "interrupted before step one");
        }
        SolveOutcome::Completed(_) => panic!("pre-tripped token must interrupt"),
    }
    // The token is level-triggered: still tripped, still interrupting.
    assert!(session
        .solve_interruptible(Some(&token))
        .unwrap()
        .is_interrupted());
    // Reset and resume: the solve completes, identical to the oracle.
    token.reset();
    match session.solve_interruptible(Some(&token)).unwrap() {
        SolveOutcome::Completed(snap) => {
            assert_eq!(snap.completeness(), Completeness::Complete);
        }
        SolveOutcome::Interrupted { reason, .. } => panic!("reset token interrupted: {reason}"),
    }
    let resumed = session.into_result();
    assert_results_identical(&bench.program, &oracle, &resumed, "cancel-pretripped");
}

#[test]
fn try_solve_surfaces_budget_exhaustion_as_error_without_poisoning() {
    // The completion-only API reports an exhausted budget as
    // `AnalysisError::Interrupted` — and the checkpoint is retained, so
    // repeatedly calling it marches the same fixpoint to completion.
    let bench = bench();
    let config = AnalysisConfig::skipflow().with_step_budget(64u64);
    let oracle = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());
    let mut session = AnalysisSession::builder(&bench.program)
        .config(config)
        .roots(bench.roots.iter().copied())
        .build()
        .unwrap();
    let mut errors = 0;
    loop {
        match session.try_solve() {
            Ok(snap) => {
                assert_eq!(snap.completeness(), Completeness::Complete);
                break;
            }
            Err(AnalysisError::Interrupted { reason }) => {
                assert!(matches!(reason, InterruptReason::StepBudget { budget: 64 }));
                let rendered = AnalysisError::Interrupted { reason }.to_string();
                assert!(rendered.contains("solve_interruptible"), "{rendered}");
                errors += 1;
                assert!(errors < 100_000, "did not converge");
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(errors >= 1, "the 64-step budget must trip at least once");
    let resumed = session.into_result();
    assert_results_identical(&bench.program, &oracle, &resumed, "try-solve-budget");
}

#[test]
fn completeness_tags_follow_the_session_lifecycle() {
    let bench = bench();
    let extra = pick_spread_roots(&bench.program, &bench.roots, 4);
    assert!(!extra.is_empty());
    let mut session = AnalysisSession::builder(&bench.program)
        .skipflow()
        .roots(bench.roots.iter().copied())
        .build()
        .unwrap();
    // Nothing solved yet: the empty snapshot is partial.
    assert_eq!(session.completeness(), Completeness::Partial);
    assert_eq!(session.snapshot().completeness(), Completeness::Partial);
    // A completed solve is complete — through the inherent accessor and
    // the `CallGraphQuery` default alike.
    let snap = session.solve();
    assert_eq!(snap.completeness(), Completeness::Complete);
    assert_eq!(CallGraphQuery::completeness(&snap), Completeness::Complete);
    // Roots pending a solve make the current view partial again…
    session.add_roots(extra.iter().copied()).unwrap();
    assert_eq!(session.snapshot().completeness(), Completeness::Partial);
    // …until the next solve catches up.
    session.solve();
    assert_eq!(session.completeness(), Completeness::Complete);
    let result = session.into_result();
    assert_eq!(result.completeness(), Completeness::Complete);
    assert_eq!(CallGraphQuery::completeness(&result), Completeness::Complete);
}

#[test]
fn wall_and_memory_budgets_admit_generous_limits() {
    // Budgets that are never hit must not change the result (the guard's
    // strided polls are observationally free).
    let bench = bench();
    let plain = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());
    let config = AnalysisConfig::skipflow()
        .with_wall_budget(Duration::from_secs(3600))
        .with_memory_budget(usize::MAX);
    let mut session = AnalysisSession::builder(&bench.program)
        .config(config)
        .roots(bench.roots.iter().copied())
        .build()
        .unwrap();
    match session.solve_interruptible(None).unwrap() {
        SolveOutcome::Completed(_) => {}
        SolveOutcome::Interrupted { reason, .. } => panic!("generous budget tripped: {reason}"),
    }
    let result = session.into_result();
    assert_results_identical(&bench.program, &plain, &result, "generous-budgets");
}
